"""Trend/seasonal/remainder decomposition built from scratch.

Provides classical moving-average decomposition plus an STL-style variant
whose trend is estimated with a from-scratch LOESS smoother.  These feed
the seasonality/trend strength measures used to characterise datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Decomposition", "moving_average", "loess_smooth",
           "classical_decompose", "stl_decompose"]


@dataclass(frozen=True)
class Decomposition:
    """Additive decomposition ``values = trend + seasonal + remainder``."""

    trend: np.ndarray
    seasonal: np.ndarray
    remainder: np.ndarray

    @property
    def values(self):
        return self.trend + self.seasonal + self.remainder


def moving_average(values, window):
    """Centred moving average with edge-shrinking windows (no NaN edges)."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    n = values.shape[0]
    half = window // 2
    cumsum = np.concatenate([[0.0], np.cumsum(values)])
    out = np.empty(n)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out[i] = (cumsum[hi] - cumsum[lo]) / (hi - lo)
    return out


def loess_smooth(values, frac=0.3, degree=1):
    """LOESS: locally weighted polynomial regression with tricube weights.

    A from-scratch implementation sufficient for STL-style trend
    extraction.  ``frac`` is the fraction of points in each local window.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n < 3:
        return values.copy()
    span = max(int(np.ceil(frac * n)), degree + 2)
    span = min(span, n)
    x = np.arange(n, dtype=np.float64)
    out = np.empty(n)
    half = span // 2
    for i in range(n):
        lo = max(0, min(i - half, n - span))
        hi = lo + span
        xs = x[lo:hi]
        ys = values[lo:hi]
        dist = np.abs(xs - i)
        dmax = dist.max()
        w = (1.0 - (dist / (dmax + 1e-12)) ** 3) ** 3
        w = np.maximum(w, 1e-9)
        # Weighted least squares for a local polynomial.
        design = np.vander(xs - i, degree + 1, increasing=True)
        wd = design * w[:, None]
        coeffs, *_ = np.linalg.lstsq(wd.T @ design, wd.T @ ys, rcond=None)
        out[i] = coeffs[0]
    return out


def _seasonal_means(detrended, period):
    """Average each phase of the cycle and centre the result."""
    n = detrended.shape[0]
    means = np.zeros(period)
    for phase in range(period):
        means[phase] = detrended[phase::period].mean()
    means -= means.mean()
    return np.resize(means, n)


def classical_decompose(values, period):
    """Classical additive decomposition with a centred moving average."""
    values = np.asarray(values, dtype=np.float64)
    if period < 2 or values.shape[0] < 2 * period:
        trend = moving_average(values, max(period, 5))
        return Decomposition(trend=trend,
                             seasonal=np.zeros_like(values),
                             remainder=values - trend)
    trend = moving_average(values, period if period % 2 == 1 else period + 1)
    seasonal = _seasonal_means(values - trend, period)
    return Decomposition(trend=trend, seasonal=seasonal,
                         remainder=values - trend - seasonal)


def stl_decompose(values, period, iterations=2, trend_frac=None):
    """STL-style decomposition: alternate LOESS trend and seasonal means."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if period < 2 or n < 2 * period:
        trend = loess_smooth(values, frac=0.4)
        return Decomposition(trend=trend, seasonal=np.zeros(n),
                             remainder=values - trend)
    if trend_frac is None:
        trend_frac = min(max(1.5 * period / n, 0.15), 0.5)
    seasonal = np.zeros(n)
    trend = np.zeros(n)
    for _ in range(max(iterations, 1)):
        seasonal = _seasonal_means(values - trend, period)
        trend = loess_smooth(values - seasonal, frac=trend_frac)
    return Decomposition(trend=trend, seasonal=seasonal,
                         remainder=values - trend - seasonal)
