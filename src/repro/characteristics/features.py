"""Time-series characteristic extraction.

Computes the six characteristic axes along which TFB's datasets were
selected — Seasonality, Trend, Transition, Shifting, Stationarity,
Correlation — plus the dominant period.  The resulting vector is what the
Automated Ensemble classifier can consume as the "hand-crafted features"
ablation baseline (E8), and what the frontend displays next to a dataset
(Fig. 4, label 4).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from .decomposition import stl_decompose
from .stattests import acf, adf_test, kpss_test

__all__ = ["Characteristics", "detect_period", "seasonality_strength",
           "trend_strength", "shifting_score", "transition_score",
           "stationarity_score", "correlation_score", "extract",
           "FEATURE_NAMES"]

FEATURE_NAMES = ("seasonality", "trend", "transition", "shifting",
                 "stationarity", "correlation", "period")


@dataclass(frozen=True)
class Characteristics:
    """Scores in [0, 1] per axis (period is in steps)."""

    seasonality: float
    trend: float
    transition: float
    shifting: float
    stationarity: float
    correlation: float
    period: int

    def as_dict(self):
        return asdict(self)

    def as_vector(self):
        """Fixed-order feature vector (period log-scaled into ~[0, 1])."""
        return np.array([
            self.seasonality, self.trend, self.transition, self.shifting,
            self.stationarity, self.correlation,
            np.log1p(self.period) / np.log(1 + 512),
        ])

    def dominant(self, threshold=0.6):
        """Names of axes whose score exceeds ``threshold``."""
        scores = self.as_dict()
        scores.pop("period")
        return sorted(k for k, v in scores.items() if v >= threshold)


def detect_period(values, max_period=None):
    """Dominant seasonal period via the autocorrelation function.

    Returns 0 when no convincing periodic peak exists.  A candidate lag is
    accepted when its ACF value is a local maximum above 0.15.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if max_period is None:
        max_period = min(n // 3, 256)
    if max_period < 2:
        return 0
    # A deterministic trend biases ACF peaks; remove the linear part first.
    t = np.arange(n)
    slope, intercept = np.polyfit(t, values, 1)
    detrended = values - (slope * t + intercept)
    correl = acf(detrended, max_period)
    best_lag, best_val = 0, 0.15
    for lag in range(2, max_period):
        if correl[lag] > best_val and correl[lag] >= correl[lag - 1] \
                and correl[lag] >= correl[lag + 1]:
            best_lag, best_val = lag, correl[lag]
    return int(best_lag)


def _strength(component, remainder):
    """Wang-Smith-Hyndman strength: 1 - Var(resid)/Var(component+resid)."""
    denom = np.var(component + remainder)
    if denom < 1e-12:
        return 0.0
    return float(np.clip(1.0 - np.var(remainder) / denom, 0.0, 1.0))


def seasonality_strength(values, period=None):
    """Seasonal strength in [0, 1] from the STL decomposition."""
    values = np.asarray(values, dtype=np.float64)
    if period is None:
        period = detect_period(values)
    if period < 2:
        return 0.0
    dec = stl_decompose(values, period)
    return _strength(dec.seasonal, dec.remainder)


def trend_strength(values, period=None):
    """Trend strength in [0, 1] from the STL decomposition."""
    values = np.asarray(values, dtype=np.float64)
    if period is None:
        period = detect_period(values)
    dec = stl_decompose(values, max(period, 2))
    return _strength(dec.trend, dec.remainder)


def shifting_score(values, n_blocks=8):
    """Distribution-shift score in [0, 1].

    Splits the series into blocks and measures the spread of block means
    relative to the overall scale; large spread means the level wanders
    (the "Shifting" axis).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    n_blocks = max(min(n_blocks, n // 8), 2)
    blocks = np.array_split(values, n_blocks)
    means = np.array([b.mean() for b in blocks])
    scale = values.std() + 1e-12
    spread = means.std() / scale
    return float(np.clip(spread, 0.0, 1.0))


def transition_score(values, n_blocks=8):
    """Regime-transition score in [0, 1].

    Measures how much local second-order statistics (variance and lag-1
    autocorrelation) vary across blocks — stable dynamics score near 0,
    regime-switching series near 1.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    n_blocks = max(min(n_blocks, n // 16), 2)
    blocks = np.array_split(values, n_blocks)
    stds, rhos = [], []
    for b in blocks:
        stds.append(b.std())
        centred = b - b.mean()
        denom = float(centred @ centred)
        rhos.append(float(centred[1:] @ centred[:-1]) / denom
                    if denom > 1e-12 else 0.0)
    stds = np.asarray(stds)
    rel_std = stds.std() / (stds.mean() + 1e-12)
    rho_spread = np.std(rhos)
    return float(np.clip(0.5 * rel_std + 0.5 * rho_spread, 0.0, 1.0))


def stationarity_score(values):
    """Stationarity in [0, 1]: 1 is strongly stationary.

    Combines the ADF test (rejecting the unit root pushes the score up)
    and the KPSS test (rejecting stationarity pushes it down).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] < 16 or values.std() < 1e-12:
        return 0.5
    adf = adf_test(values)
    kpss = kpss_test(values)
    score = 0.5 * (1.0 - adf.pvalue) + 0.5 * kpss.pvalue
    return float(np.clip(score, 0.0, 1.0))


def correlation_score(values):
    """Mean absolute off-diagonal Pearson correlation across channels."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2 or values.shape[1] < 2:
        return 0.0
    keep = values.std(axis=0) > 1e-12
    if keep.sum() < 2:
        return 0.0
    corr = np.corrcoef(values[:, keep], rowvar=False)
    mask = ~np.eye(corr.shape[0], dtype=bool)
    return float(np.clip(np.abs(corr[mask]).mean(), 0.0, 1.0))


def extract(series_or_values, period=None):
    """Extract a :class:`Characteristics` record.

    Accepts a :class:`~repro.datasets.TimeSeries` or a raw array.  For
    multivariate input the univariate axes are computed on the mean
    channel and Correlation across channels.
    """
    values = getattr(series_or_values, "values", series_or_values)
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values[:, None]
    mono = values.mean(axis=1)
    if period is None:
        hinted = getattr(series_or_values, "freq", 0)
        period = hinted if hinted and hinted >= 2 else detect_period(mono)
    return Characteristics(
        seasonality=seasonality_strength(mono, period),
        trend=trend_strength(mono, period),
        transition=transition_score(mono),
        shifting=shifting_score(mono),
        stationarity=stationarity_score(mono),
        correlation=correlation_score(values),
        period=int(period),
    )
