"""Machine-learning forecasting methods on sliding-window features.

Each method regresses the next ``horizon`` values directly on the last
``lookback`` values (the "direct multi-step" strategy), applied channel
independently.
"""

from __future__ import annotations

import numpy as np

from ..datasets.split import make_windows
from .base import ChannelIndependent
from .tree import GradientBoostedTrees

__all__ = ["RidgeForecaster", "LassoForecaster", "KNNForecaster",
           "GBDTForecaster", "soft_thresholding", "fit_lasso_ista"]


def _window_matrix(values, lookback, horizon):
    inputs, targets = make_windows(values, lookback, horizon)
    return inputs[:, :, 0], targets[:, :, 0]


def _standardise(train):
    mean = train.mean()
    std = train.std()
    return mean, std if std > 1e-12 else 1.0


class _WindowedChannelMethod(ChannelIndependent):
    """Shared scaffolding: per-channel z-scoring + window regression."""

    category = "ml"

    def __init__(self, lookback=96, horizon=24):
        super().__init__()
        if lookback <= 0 or horizon <= 0:
            raise ValueError("lookback and horizon must be positive")
        self.lookback = lookback
        self.horizon = horizon

    def _fit_windows(self, inputs, targets, val_pair):
        raise NotImplementedError

    def _predict_window(self, state, window):
        raise NotImplementedError

    def _fit_channel(self, values, val_values):
        mean, std = _standardise(values)
        scaled = (values - mean) / std
        inputs, targets = _window_matrix(scaled, self.lookback, self.horizon)
        val_pair = None
        if val_values is not None and \
                len(val_values) >= self.lookback + self.horizon:
            val_scaled = (val_values - mean) / std
            val_pair = _window_matrix(val_scaled, self.lookback, self.horizon)
        model_state = self._fit_windows(inputs, targets, val_pair)
        return {"mean": mean, "std": std, "model": model_state}

    def _predict_channel(self, state, history, horizon):
        if len(history) < self.lookback:
            # Left-pad with the first value so short histories still work.
            pad = np.full(self.lookback - len(history), history[0])
            history = np.concatenate([pad, history])
        window = (history[-self.lookback:] - state["mean"]) / state["std"]
        out = []
        work = window.copy()
        while len(out) < horizon:
            step = self._predict_window(state["model"], work)
            out.extend(step.tolist())
            work = np.concatenate([work, step])[-self.lookback:]
        forecast = np.asarray(out[:horizon])
        return forecast * state["std"] + state["mean"]


class RidgeForecaster(_WindowedChannelMethod):
    """Closed-form ridge regression from lookback window to horizon block."""

    name = "ridge"

    def __init__(self, lookback=96, horizon=24, l2=1.0):
        super().__init__(lookback, horizon)
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2

    def _fit_windows(self, inputs, targets, val_pair):
        design = np.column_stack([inputs, np.ones(len(inputs))])
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        coef = np.linalg.solve(gram, design.T @ targets)
        return {"coef": coef}

    def _predict_window(self, model, window):
        features = np.concatenate([window, [1.0]])
        return features @ model["coef"]


def soft_thresholding(values, threshold):
    """Elementwise soft-thresholding operator used by ISTA."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def fit_lasso_ista(design, targets, l1, iterations=200):
    """Lasso via ISTA (proximal gradient) for multi-output regression."""
    n = design.shape[0]
    lipschitz = np.linalg.norm(design, ord=2) ** 2 / n + 1e-12
    step = 1.0 / lipschitz
    coef = np.zeros((design.shape[1], targets.shape[1]))
    for _ in range(iterations):
        grad = design.T @ (design @ coef - targets) / n
        coef = soft_thresholding(coef - step * grad, step * l1)
    return coef


class LassoForecaster(_WindowedChannelMethod):
    """L1-regularised direct regression (sparse lag selection)."""

    name = "lasso"

    def __init__(self, lookback=96, horizon=24, l1=0.01, iterations=200):
        super().__init__(lookback, horizon)
        self.l1 = l1
        self.iterations = iterations

    def _fit_windows(self, inputs, targets, val_pair):
        design = np.column_stack([inputs, np.ones(len(inputs))])
        coef = fit_lasso_ista(design, targets, self.l1, self.iterations)
        return {"coef": coef}

    def _predict_window(self, model, window):
        features = np.concatenate([window, [1.0]])
        return features @ model["coef"]


class KNNForecaster(_WindowedChannelMethod):
    """k-nearest-neighbour analogue forecasting.

    Finds the training windows most similar to the current one and
    averages their continuations, weighted by inverse distance.
    """

    name = "knn"

    def __init__(self, lookback=96, horizon=24, k=5):
        super().__init__(lookback, horizon)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def _fit_windows(self, inputs, targets, val_pair):
        return {"inputs": inputs, "targets": targets}

    def _predict_window(self, model, window):
        inputs, targets = model["inputs"], model["targets"]
        dists = np.sqrt(((inputs - window) ** 2).sum(axis=1))
        k = min(self.k, len(dists))
        nearest = np.argpartition(dists, k - 1)[:k]
        weights = 1.0 / (dists[nearest] + 1e-6)
        weights /= weights.sum()
        return weights @ targets[nearest]


class GBDTForecaster(_WindowedChannelMethod):
    """Gradient-boosted trees, one ensemble per forecast step.

    To keep the fit cheap each boosted model predicts one horizon step;
    the steps share the same lag features.
    """

    name = "gbdt"

    def __init__(self, lookback=32, horizon=24, n_estimators=30,
                 learning_rate=0.12, max_depth=3, step_group=4,
                 n_thresholds=8, max_train_windows=400):
        super().__init__(lookback, horizon)
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        # Horizon steps are grouped to bound the number of ensembles.
        self.step_group = max(step_group, 1)
        self.n_thresholds = n_thresholds
        self.max_train_windows = max_train_windows

    def _fit_windows(self, inputs, targets, val_pair):
        if len(inputs) > self.max_train_windows:
            keep = np.linspace(0, len(inputs) - 1,
                               self.max_train_windows).astype(int)
            inputs, targets = inputs[keep], targets[keep]
        models = []
        for start in range(0, targets.shape[1], self.step_group):
            stop = min(start + self.step_group, targets.shape[1])
            grouped = targets[:, start:stop].mean(axis=1)
            booster = GradientBoostedTrees(
                n_estimators=self.n_estimators,
                learning_rate=self.learning_rate,
                max_depth=self.max_depth,
                n_thresholds=self.n_thresholds)
            if val_pair is not None:
                val_inputs, val_targets = val_pair
                booster.early_stopping_rounds = 8
                booster.fit(inputs, grouped, val_inputs,
                            val_targets[:, start:stop].mean(axis=1))
            else:
                booster.fit(inputs, grouped)
            models.append((start, stop, booster))
        return {"models": models, "horizon": targets.shape[1]}

    def _predict_window(self, model, window):
        out = np.empty(model["horizon"])
        features = window[None, :]
        for start, stop, booster in model["models"]:
            out[start:stop] = booster.predict(features)[0]
        return out
