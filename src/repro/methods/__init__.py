"""TFB method layer: statistical, ML and deep forecasters + registry."""

from .adapter import FunctionForecaster, ThirdPartyAdapter
from .arima import ARIMAForecaster, VARForecaster, css_residuals, fit_arima
from .base import ChannelIndependent, Forecaster, check_history
from .deep import (DeepForecaster, DLinearForecaster, GRUForecaster,
                   LinearForecaster, MLPForecaster, NLinearForecaster,
                   PatchMLPForecaster, RLinearForecaster,
                   SpectralLinearForecaster, TCNForecaster)
from .ml import (GBDTForecaster, KNNForecaster, LassoForecaster,
                 RidgeForecaster, fit_lasso_ista, soft_thresholding)
from .registry import (METHODS, categories, create, list_methods,
                       method_info, register)
from .statistical import (DriftForecaster, HoltForecaster,
                          HoltWintersForecaster, MeanForecaster,
                          NaiveForecaster, SeasonalNaiveForecaster,
                          SESForecaster, ThetaForecaster)
from .tree import GradientBoostedTrees, RegressionTree

__all__ = [
    "Forecaster", "ChannelIndependent", "check_history",
    "NaiveForecaster", "SeasonalNaiveForecaster", "DriftForecaster",
    "MeanForecaster", "SESForecaster", "HoltForecaster",
    "HoltWintersForecaster", "ThetaForecaster", "ARIMAForecaster",
    "VARForecaster", "fit_arima", "css_residuals", "RidgeForecaster",
    "LassoForecaster", "KNNForecaster", "GBDTForecaster",
    "soft_thresholding", "fit_lasso_ista", "RegressionTree",
    "GradientBoostedTrees", "DeepForecaster", "LinearForecaster",
    "MLPForecaster", "DLinearForecaster", "NLinearForecaster",
    "RLinearForecaster", "PatchMLPForecaster", "SpectralLinearForecaster",
    "TCNForecaster", "GRUForecaster", "ThirdPartyAdapter",
    "FunctionForecaster", "METHODS", "create", "register", "list_methods",
    "method_info", "categories",
]

from .deep_advanced import (MultiHeadSelfAttention, NBeatsForecaster,  # noqa: E402
                            TransformerForecaster)
from .statistical_extra import (CrostonForecaster, ETSForecaster,  # noqa: E402
                                STLForecaster, ets_sse)

__all__ += [
    "TransformerForecaster", "NBeatsForecaster", "MultiHeadSelfAttention",
    "ETSForecaster", "STLForecaster", "CrostonForecaster", "ets_sse",
]
