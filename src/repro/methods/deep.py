"""Deep-learning forecasting methods on the autograd substrate.

Implements the channel-independent long-term-forecasting family that
dominates recent TSF benchmarks: linear heads (Linear/DLinear/NLinear/
RLinear), an MLP, a patch model, a frequency-domain linear model
(FITS-style), a dilated TCN and a GRU.  All share :class:`DeepForecaster`,
which owns window construction, per-channel normalisation, minibatch
training with early stopping, and autoregressive horizon extension.
"""

from __future__ import annotations

import time

import numpy as np

from ..autograd import Tensor, losses, nn, optim
from ..autograd import functional as F
from ..datasets.split import batch_indices, make_windows
from ..telemetry import MetricsTrainingHooks, TrainingHooks  # noqa: F401
from .base import Forecaster, check_history

#: Default fit() hooks: publish per-epoch loss/grad-norm/throughput to
#: the telemetry registry (every call is a no-op while telemetry is off).
_DEFAULT_HOOKS = MetricsTrainingHooks()

__all__ = [
    "DeepForecaster", "LinearForecaster", "MLPForecaster",
    "DLinearForecaster", "NLinearForecaster", "RLinearForecaster",
    "PatchMLPForecaster", "SpectralLinearForecaster", "TCNForecaster",
    "GRUForecaster",
]


def _check_dtype(dtype):
    """Validate and normalise the training/inference dtype policy."""
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dtype}")
    return dtype


class DeepForecaster(Forecaster):
    """Shared trainer for window-to-window neural forecasters.

    Subclasses implement :meth:`build` (returning an autograd Module that
    maps a ``(batch, lookback)`` tensor to ``(batch, horizon)``) and may
    override :meth:`preprocess` for input-side featurisation.

    Channels are treated independently: every channel contributes training
    windows, and at predict time each channel is forecast from its own
    history — the channel-independence trick used by DLinear/PatchTST.
    """

    category = "deep"

    def __init__(self, lookback=96, horizon=24, epochs=30, batch_size=64,
                 lr=1e-3, patience=5, seed=0, max_windows=2000,
                 grad_clip=5.0, dtype="float64"):
        super().__init__()
        if lookback <= 0 or horizon <= 0:
            raise ValueError("lookback and horizon must be positive")
        self.lookback = lookback
        self.horizon = horizon
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.patience = patience
        self.seed = seed
        self.max_windows = max_windows
        self.grad_clip = grad_clip
        self.dtype = dtype
        self._np_dtype = _check_dtype(dtype)
        self._model = None
        self._mean = None
        self._std = None

    # -- model hooks ------------------------------------------------------
    def build(self, rng):
        """Return the network mapping (batch, lookback) -> (batch, horizon)."""
        raise NotImplementedError

    def preprocess(self, windows):
        """Hook mapping raw (batch, lookback) ndarray to network input."""
        return windows

    # -- window assembly ---------------------------------------------------
    def _collect_windows(self, values):
        """Stack channel-independent windows from a (T, C) block."""
        blocks_x, blocks_y = [], []
        for c in range(values.shape[1]):
            scaled = (values[:, c] - self._mean[c]) / self._std[c]
            if len(scaled) < self.lookback + self.horizon:
                continue
            x, y = make_windows(scaled, self.lookback, self.horizon)
            blocks_x.append(x[:, :, 0])
            blocks_y.append(y[:, :, 0])
        if not blocks_x:
            raise ValueError(
                f"{self.name}: training segment shorter than "
                f"lookback+horizon={self.lookback + self.horizon}")
        return np.concatenate(blocks_x), np.concatenate(blocks_y)

    def _subsample(self, x, y, rng):
        if len(x) <= self.max_windows:
            return x, y
        idx = rng.choice(len(x), size=self.max_windows, replace=False)
        return x[idx], y[idx]

    # -- training -----------------------------------------------------------
    def fit(self, train, val=None, hooks=None):
        if hooks is None:
            hooks = _DEFAULT_HOOKS
        train = check_history(train)
        self._np_dtype = _check_dtype(self.dtype)
        rng = np.random.default_rng(self.seed)
        self._mean = train.mean(axis=0)
        std = train.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        x, y = self._collect_windows(train)
        x, y = self._subsample(x, y, rng)
        y = y.astype(self._np_dtype, copy=False)
        val_pair = None
        if val is not None:
            val = check_history(val)
            if val.shape[0] >= self.lookback + self.horizon:
                val_pair = self._collect_windows(val)
        self._model = self.build(rng)
        if self._np_dtype != np.float64:
            self._model.to(self._np_dtype)
        optimizer = optim.Adam(self._model.parameters(), lr=self.lr)
        best_state, best_loss, since_best = None, np.inf, 0
        hooks.on_fit_start(self, len(x))
        epochs_run = 0
        for _ in range(self.epochs):
            self._model.train()
            epoch_t0 = time.perf_counter()
            loss_sum, n_batches, n_samples, grad_norm = 0.0, 0, 0, 0.0
            for batch in batch_indices(len(x), self.batch_size, rng=rng):
                optimizer.zero_grad()
                pred = self._forward(x[batch])
                loss = losses.mse_loss(pred, y[batch])
                loss.backward()
                grad_norm = optim.clip_grad_norm(self._model.parameters(),
                                                 self.grad_clip)
                optimizer.step()
                loss_sum += float(loss.data)
                n_batches += 1
                n_samples += len(batch)
            epochs_run += 1
            elapsed = time.perf_counter() - epoch_t0
            hooks.on_epoch_end(
                self, epochs_run, loss_sum / max(n_batches, 1),
                float(grad_norm),
                n_samples / elapsed if elapsed > 0 else 0.0)
            monitor = self._eval_loss(*val_pair) if val_pair \
                else self._eval_loss(x, y)
            if monitor < best_loss - 1e-9:
                best_loss, since_best = monitor, 0
                best_state = self._model.state_dict()
            else:
                since_best += 1
                if since_best >= self.patience:
                    break
        if best_state is not None:
            self._model.load_state_dict(best_state)
        self._model.eval()
        self._mark_fitted()
        hooks.on_fit_end(self, epochs_run,
                         float(best_loss) if np.isfinite(best_loss) else 0.0)
        return self

    def _forward(self, windows):
        inputs = np.asarray(self.preprocess(windows), dtype=self._np_dtype)
        return self._model(Tensor(inputs))

    def _eval_loss(self, x, y):
        self._model.eval()
        from ..autograd import no_grad
        with no_grad():
            pred = self._forward(x)
            return float(((pred.data - y) ** 2).mean())

    # -- inference ------------------------------------------------------------
    def _inference_windows(self, history):
        """Per-channel normalised lookback windows, shape (channels, lookback).

        Histories shorter than the lookback are left-padded with their
        first value, matching the training-free cold-start behaviour.
        """
        rows = []
        for c in range(history.shape[1]):
            series = (history[:, c] - self._mean[c]) / self._std[c]
            if len(series) < self.lookback:
                series = np.concatenate(
                    [np.full(self.lookback - len(series), series[0]), series])
            rows.append(series[-self.lookback:])
        return np.stack(rows)

    def _predict_windows(self, windows, horizon):
        """Autoregressive batched forecast of normalised windows.

        Runs every window through the network at once per extension step.
        A singleton batch is padded to two duplicate rows before the
        forward pass so that looped and batched inference both route
        through the same GEMM kernel — BLAS dispatches a different
        (non-bit-identical) routine for single-row matmuls, and keeping
        every call on the GEMM path makes ``predict``/``predict_batch``
        agree bitwise at float64.
        """
        from ..autograd import no_grad
        windows = np.asarray(windows, dtype=np.float64)
        padded = windows.shape[0] == 1
        if padded:
            windows = np.concatenate([windows, windows], axis=0)
        chunks = []
        produced = 0
        with no_grad():
            while produced < horizon:
                step = self._forward(windows).data.astype(np.float64,
                                                          copy=False)
                chunks.append(step)
                produced += step.shape[1]
                if produced < horizon:
                    windows = np.concatenate(
                        [windows, step], axis=1)[:, -self.lookback:]
        out = np.concatenate(chunks, axis=1)[:, :horizon]
        return out[:1] if padded else out

    def predict(self, history, horizon):
        self._require_fitted()
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        history = check_history(history)
        if history.shape[1] != len(self._mean):
            raise ValueError(
                f"{self.name}: fitted on {len(self._mean)} channels, "
                f"history has {history.shape[1]}")
        out = self._predict_windows(self._inference_windows(history), horizon)
        return out.T * self._std + self._mean

    def predict_batch(self, histories, horizon):
        """One batched autoregressive forward over every rolling window.

        All histories' channel windows are stacked into a single batch so
        the whole rolling-origin evaluation pays one network call per
        horizon extension instead of one per window.
        """
        self._require_fitted()
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        histories = [check_history(h) for h in histories]
        if not histories:
            return []
        n_channels = len(self._mean)
        blocks = []
        for history in histories:
            if history.shape[1] != n_channels:
                raise ValueError(
                    f"{self.name}: fitted on {n_channels} channels, "
                    f"history has {history.shape[1]}")
            blocks.append(self._inference_windows(history))
        out = self._predict_windows(np.concatenate(blocks, axis=0), horizon)
        out = out.reshape(len(histories), n_channels, horizon)
        return [o.T * self._std + self._mean for o in out]


class LinearForecaster(DeepForecaster):
    """Single linear map from lookback to horizon (the LTSF-Linear baseline)."""

    name = "linear_nn"

    def build(self, rng):
        return nn.Linear(self.lookback, self.horizon, rng=rng)


class MLPForecaster(DeepForecaster):
    """Two-layer MLP with ReLU."""

    name = "mlp"

    def __init__(self, hidden=128, dropout=0.1, **kwargs):
        super().__init__(**kwargs)
        self.hidden = hidden
        self.dropout = dropout

    def build(self, rng):
        return nn.Sequential(
            nn.Linear(self.lookback, self.hidden, rng=rng),
            nn.ReLU(),
            nn.Dropout(self.dropout, rng=rng),
            nn.Linear(self.hidden, self.horizon, rng=rng),
        )


class _DLinearNet(nn.Module):
    """Trend/seasonal split with separate linear heads (DLinear)."""

    def __init__(self, lookback, horizon, kernel, rng):
        super().__init__()
        self.kernel = kernel
        self.trend_head = nn.Linear(lookback, horizon, rng=rng)
        self.season_head = nn.Linear(lookback, horizon, rng=rng)
        # Fixed moving-average matrix for the trend extraction, built as a
        # banded mask in one shot: row i averages the window
        # [i - half, i + half] clipped to the valid range.
        half = kernel // 2
        idx = np.arange(lookback)
        lo = np.maximum(0, idx - half)
        hi = np.minimum(lookback, idx + half + 1)
        band = (idx[None, :] >= lo[:, None]) & (idx[None, :] < hi[:, None])
        weight = band / (hi - lo)[:, None]
        self._smooth = Tensor(np.ascontiguousarray(weight.T))

    def forward(self, x):
        trend = x @ self._smooth
        season = x - trend
        return self.trend_head(trend) + self.season_head(season)


class DLinearForecaster(DeepForecaster):
    """DLinear (Zeng et al., 2023): decomposition + two linear heads."""

    name = "dlinear"

    def __init__(self, kernel=25, **kwargs):
        super().__init__(**kwargs)
        self.kernel = kernel

    def build(self, rng):
        return _DLinearNet(self.lookback, self.horizon, self.kernel, rng)


class _NLinearNet(nn.Module):
    """Subtract the last value before the linear map, add it back after."""

    def __init__(self, lookback, horizon, rng):
        super().__init__()
        self.head = nn.Linear(lookback, horizon, rng=rng)

    def forward(self, x):
        last = x[:, -1:]
        return self.head(x - last) + last


class NLinearForecaster(DeepForecaster):
    """NLinear: last-value normalisation around a linear map."""

    name = "nlinear"

    def build(self, rng):
        return _NLinearNet(self.lookback, self.horizon, rng)


class _RLinearNet(nn.Module):
    """RevIN-style instance normalisation around a linear map."""

    def __init__(self, lookback, horizon, rng, eps=1e-5):
        super().__init__()
        self.eps = eps
        self.head = nn.Linear(lookback, horizon, rng=rng)
        self.affine_scale = nn.Parameter(np.ones(1))
        self.affine_shift = nn.Parameter(np.zeros(1))

    def forward(self, x):
        mean = x.mean(axis=1, keepdims=True)
        centred = x - mean
        std = ((centred * centred).mean(axis=1, keepdims=True)
               + self.eps).sqrt()
        normed = centred / std * self.affine_scale + self.affine_shift
        out = self.head(normed)
        return (out - self.affine_shift) / self.affine_scale * std + mean


class RLinearForecaster(DeepForecaster):
    """RLinear: reversible instance normalisation + linear head."""

    name = "rlinear"

    def build(self, rng):
        return _RLinearNet(self.lookback, self.horizon, rng)


class _PatchMLPNet(nn.Module):
    """Patch embedding + MLP mixer head (PatchTST-lite without attention)."""

    def __init__(self, lookback, horizon, patch_len, d_model, rng):
        super().__init__()
        if lookback % patch_len != 0:
            raise ValueError("lookback must be divisible by patch_len")
        self.patch_len = patch_len
        self.n_patches = lookback // patch_len
        self.embed = nn.Linear(patch_len, d_model, rng=rng)
        self.mix = nn.Sequential(
            nn.Linear(self.n_patches * d_model, 2 * d_model, rng=rng),
            nn.GELU(),
            nn.Linear(2 * d_model, horizon, rng=rng),
        )

    def forward(self, x):
        batch = x.shape[0]
        patches = x.reshape(batch, self.n_patches, self.patch_len)
        embedded = self.embed(patches)
        return self.mix(embedded.reshape(batch, -1))


class PatchMLPForecaster(DeepForecaster):
    """Patch-based MLP forecaster."""

    name = "patchmlp"

    def __init__(self, patch_len=16, d_model=32, **kwargs):
        super().__init__(**kwargs)
        self.patch_len = patch_len
        self.d_model = d_model

    def build(self, rng):
        return _PatchMLPNet(self.lookback, self.horizon, self.patch_len,
                            self.d_model, rng)


class SpectralLinearForecaster(DeepForecaster):
    """FITS-style frequency-domain linear model.

    The lookback window is mapped to its low-frequency rFFT coefficients
    (real/imag stacked) outside the graph, and a linear layer regresses the
    horizon directly from the spectrum.
    """

    name = "spectral"

    def __init__(self, n_freqs=24, **kwargs):
        # A small linear head trains best with a larger step size than the
        # deep-model default.
        kwargs.setdefault("lr", 5e-3)
        super().__init__(**kwargs)
        self.n_freqs = n_freqs

    def _spectrum(self, windows):
        coeffs = np.fft.rfft(windows, axis=1)[:, :self.n_freqs]
        return np.concatenate([coeffs.real, coeffs.imag], axis=1) \
            / np.sqrt(self.lookback)

    def preprocess(self, windows):
        return self._spectrum(np.asarray(windows, dtype=np.float64))

    def build(self, rng):
        return nn.Linear(2 * self.n_freqs, self.horizon, rng=rng)


class _TCNNet(nn.Module):
    """Dilated causal convolution stack with residual connections."""

    def __init__(self, lookback, horizon, channels, kernel, n_layers, rng):
        super().__init__()
        self.input_proj = nn.Conv1d(1, channels, 1, rng=rng)
        self.convs = nn.ModuleList([
            nn.Conv1d(channels, channels, kernel,
                      dilation=2 ** i,
                      padding=((kernel - 1) * 2 ** i, 0), rng=rng)
            for i in range(n_layers)
        ])
        self.head = nn.Linear(channels, horizon, rng=rng)

    def forward(self, x):
        h = self.input_proj(x.reshape(x.shape[0], 1, x.shape[1]))
        for conv in self.convs:
            h = h + conv(h).relu()
        last = h[:, :, -1]
        return self.head(last)


class TCNForecaster(DeepForecaster):
    """Temporal convolutional network with exponentially dilated filters."""

    name = "tcn"

    def __init__(self, channels=24, kernel=3, n_layers=3, **kwargs):
        kwargs.setdefault("epochs", 15)
        kwargs.setdefault("max_windows", 800)
        super().__init__(**kwargs)
        self.channels = channels
        self.kernel = kernel
        self.n_layers = n_layers

    def build(self, rng):
        return _TCNNet(self.lookback, self.horizon, self.channels,
                       self.kernel, self.n_layers, rng)


class _GRUNet(nn.Module):
    """GRU encoder; the final hidden state feeds a linear forecast head."""

    def __init__(self, horizon, hidden, rng):
        super().__init__()
        self.gru = nn.GRU(1, hidden, rng=rng)
        self.head = nn.Linear(hidden, horizon, rng=rng)

    def forward(self, x):
        seq = x.reshape(x.shape[0], x.shape[1], 1)
        _, final = self.gru(seq)
        return self.head(final)


class GRUForecaster(DeepForecaster):
    """Recurrent forecaster (GRU encoder + direct multi-step head)."""

    name = "gru"

    def __init__(self, hidden=32, downsample=2, **kwargs):
        kwargs.setdefault("epochs", 10)
        kwargs.setdefault("max_windows", 400)
        super().__init__(**kwargs)
        self.hidden = hidden
        # Backprop-through-time in a Python loop is the slow path of the
        # substrate; feeding every ``downsample``-th point keeps it usable.
        self.downsample = max(downsample, 1)

    def preprocess(self, windows):
        return np.asarray(windows, dtype=np.float64)[:, ::self.downsample]

    def build(self, rng):
        return _GRUNet(self.horizon, self.hidden, rng)
