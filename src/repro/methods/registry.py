"""Method registry: the catalogue behind "30+ methods" in the paper.

Each entry maps a stable method name to a zero-config factory.  The
registry powers the one-click pipeline ("run a method on all existing
datasets"), the knowledge base (method metadata table) and the automated
ensemble (candidate pool).
"""

from __future__ import annotations

from .arima import ARIMAForecaster, VARForecaster
from .base import Forecaster
from .deep import (DLinearForecaster, GRUForecaster, LinearForecaster,
                   MLPForecaster, NLinearForecaster, PatchMLPForecaster,
                   RLinearForecaster, SpectralLinearForecaster, TCNForecaster)
from .deep_advanced import NBeatsForecaster, TransformerForecaster
from .ml import GBDTForecaster, KNNForecaster, LassoForecaster, RidgeForecaster
from .statistical import (DriftForecaster, HoltForecaster,
                          HoltWintersForecaster, MeanForecaster,
                          NaiveForecaster, SeasonalNaiveForecaster,
                          SESForecaster, ThetaForecaster)
from .statistical_extra import (CrostonForecaster, ETSForecaster,
                                STLForecaster)

__all__ = ["METHODS", "register", "create", "list_methods", "method_info",
           "categories"]


METHODS = {}


def register(name, factory, category, description):
    """Add a method to the registry (used for user plug-ins too)."""
    if name in METHODS:
        raise ValueError(f"method {name!r} already registered")
    METHODS[name] = {"factory": factory, "category": category,
                     "description": description}


def _builtin(cls, description, **defaults):
    register(cls.name, lambda **kw: cls(**{**defaults, **kw}),
             cls.category, description)


_builtin(NaiveForecaster, "Repeat the last observed value")
_builtin(SeasonalNaiveForecaster, "Repeat the last full season")
_builtin(DriftForecaster, "Linear extrapolation of the overall drift")
_builtin(MeanForecaster, "Mean of the recent window")
_builtin(SESForecaster, "Simple exponential smoothing, tuned alpha")
_builtin(HoltForecaster, "Holt damped-trend exponential smoothing")
_builtin(HoltWintersForecaster, "Additive triple exponential smoothing")
_builtin(ThetaForecaster, "Theta method with seasonal adjustment")
_builtin(ARIMAForecaster, "ARIMA(2,1,1) fitted by CSS")
register("auto_arima",
         lambda **kw: ARIMAForecaster(auto_order=True, **kw),
         "statistical", "ARIMA with AIC order search")
_builtin(VARForecaster, "Vector autoregression (multivariate)")
_builtin(RidgeForecaster, "Ridge direct multi-step regression on lags")
_builtin(LassoForecaster, "Lasso (ISTA) sparse lag regression")
_builtin(KNNForecaster, "k-nearest-neighbour analogue forecasting")
_builtin(GBDTForecaster, "Gradient-boosted trees per horizon group")
_builtin(LinearForecaster, "Single linear layer (LTSF-Linear)")
_builtin(MLPForecaster, "Two-layer MLP")
_builtin(DLinearForecaster, "DLinear: decomposition + linear heads")
_builtin(NLinearForecaster, "NLinear: last-value normalised linear")
_builtin(RLinearForecaster, "RLinear: RevIN-normalised linear")
_builtin(PatchMLPForecaster, "Patch embedding + MLP head")
_builtin(SpectralLinearForecaster, "FITS-style frequency-domain linear")
_builtin(TCNForecaster, "Dilated causal temporal conv net")
_builtin(GRUForecaster, "GRU encoder + direct multi-step head")
_builtin(ETSForecaster, "ETS(A,Ad,N) with optimised smoothing parameters")
_builtin(STLForecaster, "STL decomposition + drift/seasonal recomposition")
_builtin(CrostonForecaster, "Croston SBA for intermittent demand")
_builtin(TransformerForecaster, "PatchTST-lite self-attention encoder")
_builtin(NBeatsForecaster, "N-BEATS-lite doubly-residual MLP stack")


def create(name, **overrides):
    """Instantiate a registered method by name with optional overrides."""
    try:
        entry = METHODS[name]
    except KeyError:
        raise KeyError(
            f"unknown method {name!r}; known: {sorted(METHODS)}") from None
    model = entry["factory"](**overrides)
    if not isinstance(model, Forecaster):
        raise TypeError(f"factory for {name!r} returned {type(model)}")
    return model


def list_methods(category=None):
    """Names of registered methods, optionally filtered by category."""
    if category is None:
        return sorted(METHODS)
    return sorted(n for n, e in METHODS.items() if e["category"] == category)


def method_info(name):
    """Metadata record for one method (for the knowledge base)."""
    entry = METHODS[name]
    return {"name": name, "category": entry["category"],
            "description": entry["description"]}


def categories():
    """Distinct method categories present in the registry."""
    return sorted({e["category"] for e in METHODS.values()})
