"""Additional statistical methods: optimised ETS, STL-based, Croston.

Rounds the statistical tier out to the breadth TFB's "30+ methods" pool
implies: a damped-trend ETS with numerically optimised smoothing
parameters, an STL-decomposition forecaster (trend drift + seasonal
tiling), and Croston's method for intermittent series.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..characteristics.decomposition import stl_decompose
from ..characteristics.features import detect_period
from .base import ChannelIndependent

__all__ = ["ETSForecaster", "STLForecaster", "CrostonForecaster",
           "ets_sse"]


def ets_sse(values, alpha, beta, phi):
    """One-step-ahead SSE of damped-trend (A,Ad,N) exponential smoothing."""
    level = values[0]
    trend = values[1] - values[0] if len(values) > 1 else 0.0
    sse = 0.0
    for v in values[1:]:
        prediction = level + phi * trend
        error = v - prediction
        sse += error * error
        level = prediction + alpha * error
        trend = phi * trend + alpha * beta * error
    return sse


class ETSForecaster(ChannelIndependent):
    """ETS(A, Ad, N): damped additive trend, parameters fit by L-BFGS.

    Unlike :class:`HoltForecaster` (fixed smoothing constants), this
    optimises (alpha, beta, phi) against the in-sample one-step SSE — the
    standard statsmodels/forecast-package behaviour.
    """

    name = "ets"

    def __init__(self, max_fit_length=512):
        super().__init__()
        self.max_fit_length = max_fit_length

    def _fit_channel(self, values, val_values):
        values = values[-self.max_fit_length:]
        scale = values.std() + 1e-12

        def objective(theta):
            alpha = 1.0 / (1.0 + np.exp(-theta[0]))
            beta = 1.0 / (1.0 + np.exp(-theta[1]))
            phi = 0.8 + 0.199 / (1.0 + np.exp(-theta[2]))
            return ets_sse(values / scale, alpha, beta, phi)

        best = minimize(objective, np.array([0.0, -1.0, 0.0]),
                        method="Nelder-Mead",
                        options={"maxiter": 200, "xatol": 1e-4,
                                 "fatol": 1e-8})
        alpha = 1.0 / (1.0 + np.exp(-best.x[0]))
        beta = 1.0 / (1.0 + np.exp(-best.x[1]))
        phi = 0.8 + 0.199 / (1.0 + np.exp(-best.x[2]))
        return {"alpha": float(alpha), "beta": float(beta),
                "phi": float(phi)}

    def _predict_channel(self, state, history, horizon):
        alpha, beta, phi = state["alpha"], state["beta"], state["phi"]
        level = history[0]
        trend = history[1] - history[0] if len(history) > 1 else 0.0
        for v in history[1:]:
            prediction = level + phi * trend
            error = v - prediction
            level = prediction + alpha * error
            trend = phi * trend + alpha * beta * error
        damp = np.cumsum(phi ** np.arange(1, horizon + 1))
        return level + trend * damp


class STLForecaster(ChannelIndependent):
    """Forecast via STL decomposition.

    Trend is extrapolated with the drift of its final span, seasonality is
    tiled forward, and the remainder is assumed zero-mean — the classical
    "decompose, forecast components, recompose" recipe.
    """

    name = "stl"

    def __init__(self, period=None, drift_span=48):
        super().__init__()
        self.period = period
        self.drift_span = drift_span

    def _fit_channel(self, values, val_values):
        period = self.period or detect_period(values)
        return {"period": int(period)}

    def _predict_channel(self, state, history, horizon):
        period = state["period"]
        if period < 2 or len(history) < 2 * period:
            span = min(self.drift_span, len(history) - 1)
            drift = (history[-1] - history[-span - 1]) / max(span, 1)
            return history[-1] + drift * np.arange(1, horizon + 1)
        dec = stl_decompose(history, period)
        span = min(self.drift_span, len(history) - 1)
        drift = (dec.trend[-1] - dec.trend[-span - 1]) / max(span, 1)
        trend = dec.trend[-1] + drift * np.arange(1, horizon + 1)
        phases = (np.arange(len(history), len(history) + horizon)) % period
        season_template = np.array([dec.seasonal[p::period].mean()
                                    for p in range(period)])
        return trend + season_template[phases]


class CrostonForecaster(ChannelIndependent):
    """Croston's method for intermittent demand (SBA-corrected).

    Smooths non-zero demand sizes and inter-demand intervals separately;
    on non-intermittent series it degrades gracefully to SES-like
    behaviour.
    """

    name = "croston"

    def __init__(self, alpha=0.1):
        super().__init__()
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha

    def _fit_channel(self, values, val_values):
        return None

    def _predict_channel(self, state, history, horizon):
        nonzero = np.flatnonzero(np.abs(history) > 1e-12)
        if nonzero.size == 0:
            return np.zeros(horizon)
        if nonzero.size == len(history):
            # Dense series: plain SES on the values.
            level = history[0]
            for v in history[1:]:
                level = self.alpha * v + (1 - self.alpha) * level
            return np.full(horizon, level)
        size = history[nonzero[0]]
        interval = max(nonzero[0] + 1.0, 1.0)
        previous = nonzero[0]
        for idx in nonzero[1:]:
            size = self.alpha * history[idx] + (1 - self.alpha) * size
            interval = self.alpha * (idx - previous) \
                + (1 - self.alpha) * interval
            previous = idx
        # Syntetos-Boylan approximation debiasing.
        rate = (1.0 - self.alpha / 2.0) * size / max(interval, 1e-9)
        return np.full(horizon, rate)
