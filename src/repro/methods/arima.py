"""ARIMA and VAR implemented from scratch.

ARIMA(p, d, q) is fitted by conditional sum of squares (CSS) with
``scipy.optimize.minimize``; ``auto_order`` performs a small AIC grid
search like auto-ARIMA.  VAR(p) is fitted by per-equation least squares.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from .base import ChannelIndependent, Forecaster, check_history

__all__ = ["ARIMAForecaster", "VARForecaster", "css_residuals", "fit_arima"]


def _difference(values, d):
    for _ in range(d):
        values = np.diff(values)
    return values


def _undifference(forecast, history, d):
    """Integrate a differenced forecast back to the original level."""
    for k in range(d, 0, -1):
        tail = _difference(history, k - 1)
        last = tail[-1]
        forecast = last + np.cumsum(forecast)
    return forecast


def css_residuals(values, ar, ma, intercept):
    """Residuals of an ARMA model under conditional sum of squares.

    The recursion starts at ``t = p`` with zero pre-sample residuals, the
    standard CSS conditioning.
    """
    p, q = len(ar), len(ma)
    n = len(values)
    resid = np.zeros(n)
    for t in range(p, n):
        pred = intercept
        if p:
            pred += float(ar @ values[t - p:t][::-1])
        for j in range(1, q + 1):
            if t - j >= p:
                pred += ma[j - 1] * resid[t - j]
        resid[t] = values[t] - pred
    return resid[p:]


def _ols_ar(work, p):
    """Closed-form conditional least squares for a pure AR(p) model."""
    rows = len(work) - p
    design = np.column_stack(
        [work[p - lag - 1: len(work) - lag - 1] for lag in range(p)]
        + [np.ones(rows)])
    coef, *_ = np.linalg.lstsq(design, work[p:], rcond=None)
    return coef[:p], float(coef[p])


def fit_arima(values, p, d, q, maxiter=200):
    """Fit ARIMA(p,d,q) by CSS; returns (ar, ma, intercept, sigma2, aic).

    Pure AR models (q == 0) use the exact conditional-least-squares
    solution; mixed models start Nelder-Mead from the AR-only solution.
    """
    work = _difference(np.asarray(values, dtype=np.float64), d)
    n = len(work)
    if n <= p + q + 1:
        raise ValueError(f"series too short for ARIMA({p},{d},{q})")
    mean = work.mean()

    def finalise(ar, ma, intercept):
        resid = css_residuals(work, ar, ma, intercept)
        eff_n = max(len(resid), 1)
        sigma2 = float(resid @ resid) / eff_n
        k = p + q + 1
        aic = eff_n * np.log(max(sigma2, 1e-12)) + 2 * k
        return ar, ma, intercept, sigma2, aic

    if q == 0 and p > 0:
        ar, intercept = _ols_ar(work, p)
        return finalise(ar, np.empty(0), intercept)

    def unpack(theta):
        ar = theta[:p]
        ma = theta[p:p + q]
        intercept = theta[p + q]
        return ar, ma, intercept

    def objective(theta):
        ar, ma, intercept = unpack(theta)
        # Soft stationarity/invertibility guard.
        if np.sum(np.abs(ar)) > 2.0 or np.sum(np.abs(ma)) > 2.0:
            return 1e12
        resid = css_residuals(work, ar, ma, intercept)
        return float(resid @ resid)

    if p > 0:
        ar0, intercept0 = _ols_ar(work, p)
        # Keep the start inside the soft stationarity guard.
        if np.sum(np.abs(ar0)) > 1.9:
            ar0 = ar0 * (1.9 / np.sum(np.abs(ar0)))
    else:
        ar0, intercept0 = np.empty(0), mean
    x0 = np.concatenate([ar0, np.full(q, 0.1), [intercept0]])
    result = minimize(objective, x0, method="Nelder-Mead",
                      options={"maxiter": maxiter * max(p + q + 1, 1),
                               "xatol": 1e-6, "fatol": 1e-10})
    return finalise(*unpack(result.x))


class ARIMAForecaster(ChannelIndependent):
    """ARIMA(p,d,q) with optional AIC order selection.

    ``order=None`` triggers a small auto-ARIMA grid over
    p ∈ {0,1,2}, d ∈ {0,1}, q ∈ {0,1}.
    """

    name = "arima"

    def __init__(self, order=(2, 1, 1), auto_order=False, max_fit_length=512):
        super().__init__()
        if order is None:
            auto_order = True
            order = (2, 1, 1)
        self.order = order
        self.auto_order = auto_order
        self.max_fit_length = max_fit_length

    def _candidate_orders(self):
        return [(p, d, q) for d in (0, 1) for p in (0, 1, 2) for q in (0, 1)
                if p + q > 0]

    def _fit_channel(self, values, val_values):
        values = values[-self.max_fit_length:]
        if self.auto_order:
            best = None
            for order in self._candidate_orders():
                try:
                    fitted = fit_arima(values, *order)
                except (ValueError, np.linalg.LinAlgError):
                    continue
                if best is None or fitted[4] < best[1][4]:
                    best = (order, fitted)
            if best is None:
                raise RuntimeError("auto-ARIMA failed on every candidate order")
            order, (ar, ma, intercept, sigma2, _) = best
        else:
            order = self.order
            ar, ma, intercept, sigma2, _ = fit_arima(values, *order)
        return {"order": order, "ar": ar, "ma": ma,
                "intercept": intercept, "sigma2": sigma2}

    def _predict_channel(self, state, history, horizon):
        p, d, q = state["order"]
        ar, ma, intercept = state["ar"], state["ma"], state["intercept"]
        work = _difference(history, d)
        if len(work) < max(p, 1):
            return np.full(horizon, history[-1])
        resid = np.zeros(len(work)) if p + q == 0 else np.concatenate(
            [np.zeros(p), css_residuals(work, ar, ma, intercept)])
        extended = list(work)
        resid = list(resid)
        forecasts = []
        for h in range(horizon):
            pred = intercept
            if p:
                lagged = np.array(extended[-p:][::-1])
                pred += float(ar @ lagged)
            for j in range(1, q + 1):
                # Future residuals are zero in expectation; only in-sample
                # residuals contribute to the first q steps.
                back = j - h
                if 1 <= back <= len(resid):
                    pred += ma[j - 1] * resid[-back]
            forecasts.append(pred)
            extended.append(pred)
        forecast = np.asarray(forecasts)
        if d:
            forecast = _undifference(forecast, history, d)
        return forecast


class VARForecaster(Forecaster):
    """Vector autoregression VAR(p) fitted by least squares.

    The one genuinely multivariate statistical method in the pool; its
    edge on strongly correlated channels is what the "Correlation"
    characteristic predicts.
    """

    name = "var"
    category = "statistical"

    def __init__(self, lags=4, ridge=1e-3):
        super().__init__()
        if lags < 1:
            raise ValueError("lags must be >= 1")
        self.lags = lags
        self.ridge = ridge
        self._coef = None
        self._intercept = None
        self._n_channels = None

    def fit(self, train, val=None):
        train = check_history(train, min_length=self.lags + 2)
        n, c = train.shape
        self._n_channels = c
        rows = n - self.lags
        design = np.empty((rows, self.lags * c))
        for lag in range(1, self.lags + 1):
            design[:, (lag - 1) * c: lag * c] = \
                train[self.lags - lag: n - lag]
        target = train[self.lags:]
        design = np.column_stack([design, np.ones(rows)])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        coef = np.linalg.solve(gram, design.T @ target)
        self._coef = coef[:-1]
        self._intercept = coef[-1]
        self._mark_fitted()
        return self

    def predict(self, history, horizon):
        self._require_fitted()
        history = check_history(history, min_length=self.lags)
        if history.shape[1] != self._n_channels:
            raise ValueError("channel count mismatch with fitted VAR")
        window = [history[-lag] for lag in range(1, self.lags + 1)]
        forecasts = []
        for _ in range(horizon):
            features = np.concatenate(window)
            nxt = features @ self._coef + self._intercept
            forecasts.append(nxt)
            window = [nxt] + window[:-1]
        return np.asarray(forecasts)
