"""Regression trees and gradient boosting, from scratch.

The machine-learning tier of the method layer needs a tree ensemble
(TFB includes XGBoost-style regressors); this module supplies a CART
regression tree with variance-reduction splits and a squared-error
gradient-boosting ensemble built on it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=0.0):
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.left is None


class RegressionTree:
    """CART regression tree minimising within-node squared error.

    Split candidates are quantile thresholds per feature, which keeps the
    fit O(n_features × n_quantiles × n) per node and deterministic.
    """

    def __init__(self, max_depth=3, min_samples_leaf=8, n_thresholds=16,
                 max_features=None, rng=None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_thresholds = n_thresholds
        self.max_features = max_features
        self.rng = rng
        self._root = None
        self._n_features = None

    def fit(self, features, target):
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D")
        if features.shape[0] != target.shape[0]:
            raise ValueError("features/target length mismatch")
        self._n_features = features.shape[1]
        self._root = self._build(features, target, depth=0)
        return self

    def _candidate_features(self):
        n = self._n_features
        if self.max_features is None or self.max_features >= n:
            return np.arange(n)
        rng = self.rng if self.rng is not None else np.random.default_rng()
        return rng.choice(n, size=self.max_features, replace=False)

    def _build(self, features, target, depth):
        node = _Node(value=float(target.mean()))
        if depth >= self.max_depth or len(target) < 2 * self.min_samples_leaf:
            return node
        base_sse = float(((target - target.mean()) ** 2).sum())
        best_gain, best_feature, best_threshold = 1e-12, -1, 0.0
        for f in self._candidate_features():
            col = features[:, f]
            qs = np.unique(np.quantile(
                col, np.linspace(0.05, 0.95, self.n_thresholds)))
            for threshold in qs:
                mask = col <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or \
                        len(target) - n_left < self.min_samples_leaf:
                    continue
                left, right = target[mask], target[~mask]
                sse = float(((left - left.mean()) ** 2).sum()
                            + ((right - right.mean()) ** 2).sum())
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = gain, f, threshold
        if best_feature < 0:
            return node
        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = float(best_threshold)
        node.left = self._build(features[mask], target[mask], depth + 1)
        node.right = self._build(features[~mask], target[~mask], depth + 1)
        return node

    def predict(self, features):
        if self._root is None:
            raise RuntimeError("tree used before fit()")
        features = np.asarray(features, dtype=np.float64)
        out = np.empty(features.shape[0])
        for i, row in enumerate(features):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.value
        return out

    def depth(self):
        def walk(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)


class GradientBoostedTrees:
    """Gradient boosting with squared-error loss (residual fitting).

    Supports optional row subsampling (stochastic gradient boosting) and
    early stopping against a validation set.
    """

    def __init__(self, n_estimators=60, learning_rate=0.1, max_depth=3,
                 min_samples_leaf=8, subsample=1.0, seed=0,
                 early_stopping_rounds=None, n_thresholds=16):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.early_stopping_rounds = early_stopping_rounds
        self.n_thresholds = n_thresholds
        self._trees = []
        self._base = 0.0

    def fit(self, features, target, val_features=None, val_target=None):
        features = np.asarray(features, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._base = float(target.mean())
        self._trees = []
        current = np.full(len(target), self._base)
        val_pred = None
        if val_features is not None:
            val_features = np.asarray(val_features, dtype=np.float64)
            val_pred = np.full(len(val_target), self._base)
        best_val, since_best = np.inf, 0
        for _ in range(self.n_estimators):
            residual = target - current
            if self.subsample < 1.0:
                take = rng.random(len(target)) < self.subsample
                if take.sum() < 2 * self.min_samples_leaf:
                    take = np.ones(len(target), dtype=bool)
            else:
                take = slice(None)
            tree = RegressionTree(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  n_thresholds=self.n_thresholds)
            tree.fit(features[take], residual[take])
            step = tree.predict(features)
            current = current + self.learning_rate * step
            self._trees.append(tree)
            if val_pred is not None:
                val_pred = val_pred + self.learning_rate * tree.predict(val_features)
                val_mse = float(((val_pred - val_target) ** 2).mean())
                if val_mse < best_val - 1e-12:
                    best_val, since_best = val_mse, 0
                else:
                    since_best += 1
                    if self.early_stopping_rounds and \
                            since_best >= self.early_stopping_rounds:
                        break
        return self

    def predict(self, features):
        if not self._trees:
            raise RuntimeError("ensemble used before fit()")
        features = np.asarray(features, dtype=np.float64)
        out = np.full(features.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(features)
        return out

    @property
    def n_trees(self):
        return len(self._trees)
