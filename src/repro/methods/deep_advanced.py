"""Advanced deep forecasters: attention and basis-expansion models.

Completes the method layer's deep tier with the two architecture families
modern TSF benchmarks revolve around:

* :class:`TransformerForecaster` — a PatchTST-style encoder: patch
  embedding + multi-head self-attention blocks + a linear forecast head,
  entirely on the from-scratch autograd substrate (demonstrating it
  supports attention end to end);
* :class:`NBeatsForecaster` — N-BEATS-lite with doubly-residual generic
  blocks producing simultaneous backcast and forecast.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, nn
from ..autograd import functional as F
from .deep import DeepForecaster

__all__ = ["MultiHeadSelfAttention", "TransformerForecaster",
           "NBeatsForecaster"]


class MultiHeadSelfAttention(nn.Module):
    """Scaled dot-product self-attention over (batch, tokens, d_model)."""

    def __init__(self, d_model, n_heads, rng):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.qkv = nn.Linear(d_model, 3 * d_model, rng=rng)
        self.out = nn.Linear(d_model, d_model, rng=rng)

    def forward(self, x):
        batch, tokens, d_model = x.shape
        qkv = self.qkv(x)                                # (B, T, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.n_heads, self.d_head)
        qkv = qkv.transpose(2, 0, 3, 1, 4)               # (3, B, H, T, dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.transpose(0, 1, 3, 2)) * (self.d_head ** -0.5)
        weights = F.softmax(scores, axis=-1)             # (B, H, T, T)
        mixed = weights @ v                              # (B, H, T, dh)
        mixed = mixed.transpose(0, 2, 1, 3).reshape(batch, tokens, d_model)
        return self.out(mixed)


class _EncoderBlock(nn.Module):
    """Pre-norm transformer encoder block."""

    def __init__(self, d_model, n_heads, d_ff, rng):
        super().__init__()
        self.norm1 = nn.LayerNorm(d_model)
        self.attn = MultiHeadSelfAttention(d_model, n_heads, rng)
        self.norm2 = nn.LayerNorm(d_model)
        self.ff = nn.Sequential(nn.Linear(d_model, d_ff, rng=rng),
                                nn.GELU(),
                                nn.Linear(d_ff, d_model, rng=rng))

    def forward(self, x):
        x = x + self.attn(self.norm1(x))
        return x + self.ff(self.norm2(x))


class _PatchTransformerNet(nn.Module):
    """Patch embedding + positional encoding + encoder stack + head."""

    def __init__(self, lookback, horizon, patch_len, d_model, n_heads,
                 n_layers, rng):
        super().__init__()
        if lookback % patch_len != 0:
            raise ValueError("lookback must be divisible by patch_len")
        self.patch_len = patch_len
        self.n_patches = lookback // patch_len
        self.embed = nn.Linear(patch_len, d_model, rng=rng)
        self.position = nn.Parameter(
            rng.standard_normal((self.n_patches, d_model)) * 0.02)
        self.blocks = nn.ModuleList([
            _EncoderBlock(d_model, n_heads, 2 * d_model, rng)
            for _ in range(n_layers)])
        self.norm = nn.LayerNorm(d_model)
        self.head = nn.Linear(self.n_patches * d_model, horizon, rng=rng)

    def forward(self, x):
        batch = x.shape[0]
        patches = x.reshape(batch, self.n_patches, self.patch_len)
        h = self.embed(patches) + self.position
        for block in self.blocks:
            h = block(h)
        h = self.norm(h)
        return self.head(h.reshape(batch, -1))


class TransformerForecaster(DeepForecaster):
    """PatchTST-lite: patch tokens + multi-head self-attention encoder."""

    name = "transformer"

    def __init__(self, patch_len=16, d_model=32, n_heads=4, n_layers=2,
                 **kwargs):
        kwargs.setdefault("epochs", 15)
        kwargs.setdefault("max_windows", 600)
        super().__init__(**kwargs)
        self.patch_len = patch_len
        self.d_model = d_model
        self.n_heads = n_heads
        self.n_layers = n_layers

    def build(self, rng):
        return _PatchTransformerNet(self.lookback, self.horizon,
                                    self.patch_len, self.d_model,
                                    self.n_heads, self.n_layers, rng)


class _NBeatsBlock(nn.Module):
    """Generic N-BEATS block: MLP trunk → (backcast, forecast) heads."""

    def __init__(self, lookback, horizon, hidden, rng):
        super().__init__()
        self.trunk = nn.Sequential(
            nn.Linear(lookback, hidden, rng=rng), nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng), nn.ReLU())
        self.backcast_head = nn.Linear(hidden, lookback, rng=rng)
        self.forecast_head = nn.Linear(hidden, horizon, rng=rng)

    def forward(self, x):
        h = self.trunk(x)
        return self.backcast_head(h), self.forecast_head(h)


class _NBeatsNet(nn.Module):
    """Doubly-residual stack: each block explains part of the input."""

    def __init__(self, lookback, horizon, hidden, n_blocks, rng):
        super().__init__()
        self.blocks = nn.ModuleList([
            _NBeatsBlock(lookback, horizon, hidden, rng)
            for _ in range(n_blocks)])

    def forward(self, x):
        residual = x
        forecast = None
        for block in self.blocks:
            backcast, block_forecast = block(residual)
            residual = residual - backcast
            forecast = block_forecast if forecast is None \
                else forecast + block_forecast
        return forecast


class NBeatsForecaster(DeepForecaster):
    """N-BEATS-lite (Oreshkin et al., 2020) with generic blocks."""

    name = "nbeats"

    def __init__(self, hidden=64, n_blocks=3, **kwargs):
        kwargs.setdefault("epochs", 20)
        super().__init__(**kwargs)
        self.hidden = hidden
        self.n_blocks = n_blocks

    def build(self, rng):
        return _NBeatsNet(self.lookback, self.horizon, self.hidden,
                          self.n_blocks, rng)
