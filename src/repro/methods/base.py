"""Forecaster interface of the TFB method layer.

Every method — statistical, ML, deep or third-party — implements the same
contract so the evaluation layer, the one-click pipeline and the automated
ensemble can treat them interchangeably:

* ``fit(train, val=None)`` — learn from the training segment, optionally
  using a validation segment for early stopping / hyperparameter choice.
* ``predict(history, horizon)`` — given the most recent observations,
  return the next ``horizon`` values.

All arrays are (length, channels); univariate series use ``channels == 1``.
Univariate-only methods are applied channel-independently via
:class:`ChannelIndependent`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Forecaster", "ChannelIndependent", "check_history"]


def check_history(history, min_length=1):
    """Validate and normalise a history array to (length, channels)."""
    history = np.asarray(history, dtype=np.float64)
    if history.ndim == 1:
        history = history[:, None]
    if history.ndim != 2:
        raise ValueError(f"history must be 1-D or 2-D, got ndim={history.ndim}")
    if history.shape[0] < min_length:
        raise ValueError(
            f"history of length {history.shape[0]} shorter than required "
            f"{min_length}")
    return history


class Forecaster:
    """Abstract forecasting method.

    Subclasses set ``name`` (registry key) and ``category`` (one of
    ``statistical``, ``ml``, ``deep``, ``external``) and implement
    :meth:`fit` and :meth:`predict`.
    """

    name = "base"
    category = "statistical"

    def __init__(self):
        self._fitted = False

    # -- contract ---------------------------------------------------------
    def fit(self, train, val=None):
        """Train on ``train`` (length, channels); returns self."""
        raise NotImplementedError

    def predict(self, history, horizon):
        """Forecast ``horizon`` steps after ``history``; (horizon, channels)."""
        raise NotImplementedError

    def predict_batch(self, histories, horizon):
        """Forecast from several histories at once.

        ``histories`` is a sequence of (length, channels) arrays (lengths
        may differ, e.g. under the expanding strategy); returns a list of
        (horizon, channels) forecasts, one per history.  The base class
        falls back to the per-history loop; methods that can amortise a
        single batched forward pass (the deep forecasters) override this.
        """
        return [self.predict(history, horizon) for history in histories]

    # -- helpers ----------------------------------------------------------
    def _mark_fitted(self):
        self._fitted = True

    def _require_fitted(self):
        if not self._fitted:
            raise RuntimeError(f"{self.name}: predict() called before fit()")

    @property
    def is_fitted(self):
        return self._fitted

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r})"


class ChannelIndependent(Forecaster):
    """Base for univariate methods lifted to multivariate data.

    ``fit`` receives the full multivariate training block for any
    cross-channel statistics a subclass may want, but the default
    behaviour trains one independent copy of the univariate logic per
    channel by delegating to ``_fit_channel`` / ``_predict_channel``.
    """

    def __init__(self):
        super().__init__()
        self._channel_state = []

    def _fit_channel(self, values, val_values):
        """Fit one channel; return opaque state used at predict time."""
        raise NotImplementedError

    def _predict_channel(self, state, history, horizon):
        """Forecast one channel from its state and 1-D history."""
        raise NotImplementedError

    def fit(self, train, val=None):
        train = check_history(train)
        val = check_history(val) if val is not None else None
        self._channel_state = []
        for c in range(train.shape[1]):
            val_col = val[:, c] if val is not None else None
            self._channel_state.append(self._fit_channel(train[:, c], val_col))
        self._mark_fitted()
        return self

    def predict(self, history, horizon):
        self._require_fitted()
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        history = check_history(history)
        if history.shape[1] != len(self._channel_state):
            raise ValueError(
                f"{self.name}: fitted on {len(self._channel_state)} channels, "
                f"history has {history.shape[1]}")
        cols = [self._predict_channel(state, history[:, c], horizon)
                for c, state in enumerate(self._channel_state)]
        return np.stack([np.asarray(col, dtype=np.float64) for col in cols],
                        axis=1)
