"""Classical statistical forecasting methods.

The naive family plus exponential smoothing variants and the Theta method.
These are the "statistical learning" tier of the TFB method layer and the
reference baselines every benchmark comparison includes.
"""

from __future__ import annotations

import numpy as np

from ..characteristics.features import detect_period
from .base import ChannelIndependent

__all__ = [
    "NaiveForecaster", "SeasonalNaiveForecaster", "DriftForecaster",
    "MeanForecaster", "SESForecaster", "HoltForecaster",
    "HoltWintersForecaster", "ThetaForecaster",
]


class NaiveForecaster(ChannelIndependent):
    """Repeat the last observed value."""

    name = "naive"

    def _fit_channel(self, values, val_values):
        return None

    def _predict_channel(self, state, history, horizon):
        return np.full(horizon, history[-1])


class SeasonalNaiveForecaster(ChannelIndependent):
    """Repeat the value from one season ago (falls back to naive)."""

    name = "seasonal_naive"

    def __init__(self, period=None):
        super().__init__()
        self.period = period

    def _fit_channel(self, values, val_values):
        period = self.period or detect_period(values)
        return {"period": int(period)}

    def _predict_channel(self, state, history, horizon):
        period = state["period"]
        if period < 2 or len(history) < period:
            return np.full(horizon, history[-1])
        season = history[-period:]
        reps = int(np.ceil(horizon / period))
        return np.tile(season, reps)[:horizon]


class DriftForecaster(ChannelIndependent):
    """Linear extrapolation between the first and last training points."""

    name = "drift"

    def _fit_channel(self, values, val_values):
        if len(values) < 2:
            return {"slope": 0.0}
        return {"slope": (values[-1] - values[0]) / (len(values) - 1)}

    def _predict_channel(self, state, history, horizon):
        steps = np.arange(1, horizon + 1)
        if len(history) >= 2:
            slope = (history[-1] - history[0]) / (len(history) - 1)
        else:
            slope = state["slope"]
        return history[-1] + slope * steps


class MeanForecaster(ChannelIndependent):
    """Forecast the mean of the recent window."""

    name = "mean"

    def __init__(self, window=48):
        super().__init__()
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def _fit_channel(self, values, val_values):
        return None

    def _predict_channel(self, state, history, horizon):
        return np.full(horizon, history[-self.window:].mean())


def _ses_level(values, alpha):
    level = values[0]
    for v in values[1:]:
        level = alpha * v + (1 - alpha) * level
    return level


def _grid_best(values, candidates, loss_fn):
    """Pick the candidate minimising in-sample one-step error."""
    best, best_loss = candidates[0], np.inf
    for cand in candidates:
        loss = loss_fn(cand)
        if loss < best_loss:
            best, best_loss = cand, loss
    return best


class SESForecaster(ChannelIndependent):
    """Simple exponential smoothing with in-sample alpha selection."""

    name = "ses"

    def __init__(self, alpha=None):
        super().__init__()
        self.alpha = alpha

    @staticmethod
    def _sse(values, alpha):
        level = values[0]
        sse = 0.0
        for v in values[1:]:
            sse += (v - level) ** 2
            level = alpha * v + (1 - alpha) * level
        return sse

    def _fit_channel(self, values, val_values):
        if self.alpha is not None:
            return {"alpha": self.alpha}
        grid = np.linspace(0.05, 0.95, 10)
        alpha = _grid_best(values, list(grid),
                           lambda a: self._sse(values, a))
        return {"alpha": float(alpha)}

    def _predict_channel(self, state, history, horizon):
        level = _ses_level(history, state["alpha"])
        return np.full(horizon, level)


class HoltForecaster(ChannelIndependent):
    """Holt's linear-trend exponential smoothing (damped optional)."""

    name = "holt"

    def __init__(self, alpha=0.3, beta=0.1, damping=0.98):
        super().__init__()
        self.alpha = alpha
        self.beta = beta
        self.damping = damping

    def _run(self, values):
        level, trend = values[0], values[1] - values[0] if len(values) > 1 else 0.0
        for v in values[1:]:
            prev_level = level
            level = self.alpha * v + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
        return level, trend

    def _fit_channel(self, values, val_values):
        return None

    def _predict_channel(self, state, history, horizon):
        level, trend = self._run(history)
        phi = self.damping
        damp = np.cumsum(phi ** np.arange(1, horizon + 1))
        return level + trend * damp


class HoltWintersForecaster(ChannelIndependent):
    """Additive Holt-Winters (triple exponential smoothing)."""

    name = "holt_winters"

    def __init__(self, period=None, alpha=0.3, beta=0.05, gamma=0.2):
        super().__init__()
        self.period = period
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def _fit_channel(self, values, val_values):
        period = self.period or detect_period(values)
        return {"period": int(period)}

    def _smooth(self, values, period):
        level = values[:period].mean()
        trend = (values[period:2 * period].mean() - level) / period \
            if len(values) >= 2 * period else 0.0
        seasonal = list(values[:period] - level)
        for i in range(period, len(values)):
            v = values[i]
            s = seasonal[i % period]
            prev_level = level
            level = self.alpha * (v - s) + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
            seasonal[i % period] = self.gamma * (v - level) + (1 - self.gamma) * s
        return level, trend, seasonal, len(values)

    def _predict_channel(self, state, history, horizon):
        period = state["period"]
        if period < 2 or len(history) < 2 * period:
            level, trend = history[-1], 0.0
            return level + trend * np.arange(1, horizon + 1)
        level, trend, seasonal, n = self._smooth(history, period)
        steps = np.arange(1, horizon + 1)
        season = np.array([seasonal[(n + h - 1) % period] for h in steps])
        return level + trend * steps + season


class ThetaForecaster(ChannelIndependent):
    """The Theta method (Assimakopoulos & Nikolopoulos, 2000).

    Standard two-line formulation: average of the theta=0 line (linear
    trend) and the theta=2 line forecast by SES, after optional seasonal
    adjustment — the M3-winning classical baseline.
    """

    name = "theta"

    def __init__(self, period=None, alpha=None):
        super().__init__()
        self.period = period
        self.alpha = alpha

    def _fit_channel(self, values, val_values):
        period = self.period or detect_period(values)
        return {"period": int(period)}

    def _predict_channel(self, state, history, horizon):
        period = state["period"]
        values = np.asarray(history, dtype=np.float64)
        seasonal = np.zeros(period) if period >= 2 else None
        if period >= 2 and len(values) >= 2 * period:
            # Multiplicative-free seasonal adjustment via seasonal means.
            phase_means = np.array([values[p::period].mean()
                                    for p in range(period)])
            phase_means -= phase_means.mean()
            idx = np.arange(len(values)) % period
            values = values - phase_means[idx]
            seasonal = phase_means
        else:
            period = 0
        n = len(values)
        t = np.arange(n)
        slope, intercept = np.polyfit(t, values, 1)
        steps = np.arange(n, n + horizon)
        theta0 = intercept + slope * steps
        # theta=2 line: 2*values - trend, forecast flat with SES.
        trend_line = intercept + slope * t
        theta2 = 2.0 * values - trend_line
        alpha = self.alpha if self.alpha is not None else 0.5
        level = _ses_level(theta2, alpha)
        forecast = 0.5 * (theta0 + np.full(horizon, level))
        if period >= 2:
            phase = (np.arange(n, n + horizon)) % period
            forecast = forecast + seasonal[phase]
        return forecast
