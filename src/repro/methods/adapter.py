"""Third-party library compatibility shim.

TFB's method layer "ensures compatibility with other third-party TSF
libraries, such as Darts and TSLib": any external object exposing a
``fit``/``predict`` pair can be wrapped and dropped into the pipeline.
The adapter translates between the external calling conventions and the
:class:`~repro.methods.base.Forecaster` contract.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster, check_history

__all__ = ["ThirdPartyAdapter", "FunctionForecaster"]


class ThirdPartyAdapter(Forecaster):
    """Wrap an external model with ``fit(series)`` / ``predict(n)`` methods.

    This is the Darts calling convention: ``fit`` takes the full training
    series, ``predict`` takes the number of future steps.  ``predict`` may
    optionally accept a ``history`` keyword for models that re-condition
    on fresh context.
    """

    category = "external"

    def __init__(self, model, name=None):
        super().__init__()
        for attr in ("fit", "predict"):
            if not callable(getattr(model, attr, None)):
                raise TypeError(
                    f"external model must define a callable {attr!r}")
        self.model = model
        self.name = name or f"external_{type(model).__name__.lower()}"

    def fit(self, train, val=None):
        train = check_history(train)
        self.model.fit(train)
        self._mark_fitted()
        return self

    def predict(self, history, horizon):
        self._require_fitted()
        history = check_history(history)
        try:
            out = self.model.predict(horizon, history=history)
        except TypeError:
            out = self.model.predict(horizon)
        out = np.asarray(out, dtype=np.float64)
        if out.ndim == 1:
            out = out[:, None]
        if out.shape[0] != horizon:
            raise ValueError(
                f"external model returned {out.shape[0]} steps, "
                f"expected {horizon}")
        return out


class FunctionForecaster(Forecaster):
    """Adapt a plain ``f(history, horizon) -> forecast`` function.

    The cheapest way for a researcher to plug a new idea into the
    one-click pipeline (demo scenario S1).
    """

    category = "external"

    def __init__(self, fn, name="custom_fn"):
        super().__init__()
        if not callable(fn):
            raise TypeError("fn must be callable")
        self.fn = fn
        self.name = name

    def fit(self, train, val=None):
        self._mark_fitted()
        return self

    def predict(self, history, horizon):
        self._require_fitted()
        history = check_history(history)
        out = np.asarray(self.fn(history, horizon), dtype=np.float64)
        if out.ndim == 1:
            out = out[:, None]
        return out
