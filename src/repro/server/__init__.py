"""JSON HTTP API substituting the demo web frontend."""

from .app import EasyTimeServer, make_handler

__all__ = ["EasyTimeServer", "make_handler"]
