"""JSON-over-HTTP API substituting the demo web frontend.

Each endpoint corresponds to a button or panel in Fig. 4 / Fig. 5:

====================  =========================================
``GET  /health``       liveness probe
``GET  /methods``      method catalogue (S1 method list)
``GET  /datasets``     choosable datasets (label 2)
``POST /upload``       upload CSV dataset (label 1)
``POST /recommend``    characteristics + top-k methods (labels 3-4)
``POST /evaluate``     evaluate a chosen method (labels 5-7)
``POST /automl``       automated ensemble forecast (label 8)
``POST /qa``           natural-language Q&A (Fig. 5)
====================  =========================================

Responses are ``{"ok": bool, "data": ...}`` or
``{"ok": false, "error": str}``.  The server is stdlib-only
(``http.server``) and single-threaded — it exists to exercise the demo
workflow, not to serve production traffic.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import numpy as np

__all__ = ["EasyTimeServer", "make_handler"]


def _jsonable(obj):
    """Recursively convert numpy types for JSON serialisation."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def make_handler(api):
    """Build a request-handler class bound to an :class:`_Api` instance."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # silence default stderr noise
            pass

        def _send(self, payload, status=200):
            body = json.dumps(_jsonable(payload)).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, message, status=400):
            self._send({"ok": False, "error": message}, status=status)

        def do_GET(self):
            route = self.path.split("?")[0].rstrip("/") or "/"
            try:
                if route == "/health":
                    self._send({"ok": True, "data": "alive"})
                elif route == "/methods":
                    self._send({"ok": True, "data": api.methods()})
                elif route == "/datasets":
                    self._send({"ok": True, "data": api.datasets()})
                else:
                    self._fail(f"unknown endpoint {route}", status=404)
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

        def do_POST(self):
            route = self.path.split("?")[0].rstrip("/")
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except json.JSONDecodeError as exc:
                self._fail(f"invalid JSON body: {exc}")
                return
            handlers = {
                "/upload": api.upload,
                "/recommend": api.recommend,
                "/evaluate": api.evaluate,
                "/automl": api.automl,
                "/qa": api.qa,
            }
            fn = handlers.get(route)
            if fn is None:
                self._fail(f"unknown endpoint {route}", status=404)
                return
            try:
                self._send({"ok": True, "data": fn(body)})
            except (KeyError, ValueError, TypeError) as exc:
                self._fail(f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

    return Handler


class _Api:
    """Thin translation layer between JSON bodies and the EasyTime facade."""

    def __init__(self, easytime):
        self.et = easytime

    def methods(self):
        return [self.et.method_details(name)
                for name in self.et.list_methods()]

    def datasets(self):
        return self.et.list_datasets()

    def upload(self, body):
        series = self.et.upload_dataset(body["csv"],
                                        name=body.get("name", "uploaded"))
        return {"name": series.name, "length": series.length,
                "channels": series.n_channels}

    def recommend(self, body):
        series = self.et.choose_dataset(body["dataset"])
        rec = self.et.recommend(series, k=int(body.get("k", 5)))
        return {"methods": list(rec.methods),
                "probabilities": list(rec.probabilities),
                "characteristics": rec.characteristics.as_dict()}

    def evaluate(self, body):
        series = self.et.choose_dataset(body["dataset"])
        kwargs = {k: body[k] for k in
                  ("strategy", "lookback", "horizon") if k in body}
        if "metrics" in body:
            kwargs["metrics"] = tuple(body["metrics"])
        result = self.et.evaluate_method(body["method"], series, **kwargs)
        return {"method": result.method, "series": result.series,
                "strategy": result.strategy, "horizon": result.horizon,
                "scores": result.scores, "n_windows": result.n_windows}

    def automl(self, body):
        series = self.et.choose_dataset(body["dataset"])
        forecast, info = self.et.automl(
            series, k=int(body.get("k", 3)),
            horizon=int(body["horizon"]) if "horizon" in body else None)
        return {"forecast": forecast[:, 0].tolist(), "info": info}

    def qa(self, body):
        response = self.et.ask(body["question"])
        return {"answer": response.answer, "sql": response.sql,
                "chart": response.chart, "table": response.table(),
                "ok": response.ok}


class EasyTimeServer:
    """Embeddable HTTP server around an :class:`~repro.core.EasyTime`."""

    def __init__(self, easytime, host="127.0.0.1", port=0):
        self.api = _Api(easytime)
        self._httpd = HTTPServer((host, port), make_handler(self.api))
        self._thread = None

    @property
    def address(self):
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Serve requests on a daemon thread; returns the base URL."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self.address

    def stop(self):
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
