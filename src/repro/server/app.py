"""JSON-over-HTTP API substituting the demo web frontend.

Each endpoint corresponds to a button or panel in Fig. 4 / Fig. 5:

==========================  =========================================
``GET    /health``           liveness probe (``/healthz`` alias)
``GET    /readyz``           readiness probe (503 until ``setup()``)
``GET    /methods``          method catalogue (S1 method list)
``GET    /datasets``         choosable datasets (label 2)
``GET    /models``           warm-model registry + serving stats
``POST   /upload``           upload CSV dataset (label 1)
``POST   /recommend``        characteristics + top-k methods (labels 3-4)
``POST   /evaluate``         evaluate a chosen method (labels 5-7)
``POST   /forecast``         warm, microbatched forecast (serving tier)
``POST   /automl``           automated ensemble forecast (label 8)
``POST   /qa``               natural-language Q&A (Fig. 5)
``POST   /jobs/evaluate``    background evaluation → job id
``POST   /jobs/automl``      background ensemble forecast → job id
``POST   /jobs/bench``       background benchmark grid → job id
``GET    /jobs``             list background jobs
``GET    /jobs/<id>``        poll one job (live progress, then result)
``DELETE /jobs/<id>``        cancel a job (running grids stop between
                             cells with partial results); forget it
                             once terminal
``GET    /metrics``          Prometheus exposition of the metrics registry
``GET    /trace/<id>``       Chrome-trace JSON of one job's span tree
==========================  =========================================

Responses are ``{"ok": bool, "data": ...}`` or
``{"ok": false, "error": str}``.  The server is stdlib-only.

Serving tier (``repro.serving``): requests are handled by a threaded
acceptor pool (optionally a pre-fork ``SO_REUSEPORT`` worker set), so a
slow ``/evaluate`` no longer blocks ``/health``.  ``POST /forecast``
resolves the dataset through the server's long-lived zero-copy
:class:`~repro.runtime.SharedArrayStore`, serves fitted models out of a
warm :class:`~repro.serving.ModelRegistry` (content-fingerprint keys,
LRU/TTL eviction, single-flight fits), and coalesces concurrent
requests through a :class:`~repro.serving.MicroBatcher` into one
``predict_batch`` call — bitwise-identical to solo predicts.  Admission
control bounds per-route concurrency and queue depth; overload returns
``429`` with a ``Retry-After`` hint instead of a hung connection, and
request bodies are capped (``413``) so ``/upload`` cannot exhaust
memory.

Observability: every request is logged as a structured
``server.request`` event (method, route, status, duration) and counted
in the telemetry registry under a normalised route label, so
high-cardinality paths like ``/jobs/job-000123`` cannot explode the
label space.  :class:`EasyTimeServer` enables telemetry on construction
so ``/metrics`` is live from the first request.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time

import numpy as np

from .. import telemetry
from ..pipeline.logging import RunLogger
from ..resilience import FailurePolicy, InjectedFault, fault_point
from ..runtime import JobManager
from ..serving import (AdmissionController, AdmissionRejected,
                       GracefulThreadingHTTPServer, MicroBatcher,
                       ModelRegistry, PreforkServer, model_key)
from ..telemetry import chrome_trace, render_prometheus

__all__ = ["EasyTimeServer", "make_handler", "MAX_BODY_BYTES",
           "PayloadTooLarge", "PipelineUnavailable"]

#: Default request-body ceiling (bytes); oversized posts get a 413.
MAX_BODY_BYTES = 8 * 1024 * 1024


class PayloadTooLarge(Exception):
    """A field exceeds its configured size limit (HTTP 413)."""


class PipelineUnavailable(Exception):
    """The Q&A pipeline itself failed (HTTP 500, provenance id attached).

    Raised instead of letting the original exception bubble so the wire
    sees a stable error envelope — never a traceback — while the full
    failure stays in the structured server log under the provenance id.
    """

    def __init__(self, message, provenance_id=""):
        super().__init__(message)
        self.provenance_id = provenance_id

#: GET routes the handler dispatches on (exact match after rstrip("/")).
_GET_ROUTES = ("/", "/health", "/healthz", "/readyz", "/methods",
               "/datasets", "/models", "/metrics", "/jobs", "/grid")

#: POST route → ``_Api`` method name; drives dispatch *and* the
#: bounded-label test (every registered route must map to itself).
_POST_HANDLERS = {
    "/upload": "upload",
    "/recommend": "recommend",
    "/evaluate": "evaluate",
    "/forecast": "forecast",
    "/automl": "automl",
    "/qa": "qa",
    "/jobs/evaluate": "job_evaluate",
    "/jobs/automl": "job_automl",
    "/jobs/bench": "job_bench",
}

_POST_ROUTES = tuple(_POST_HANDLERS)

#: Fixed routes; anything else collapses to a bounded template label.
_KNOWN_ROUTES = frozenset(_GET_ROUTES) | frozenset(_POST_ROUTES)

#: Every label ``_route_label`` can emit (the bounded metric space).
ROUTE_LABELS = tuple(sorted(_KNOWN_ROUTES)) + ("/jobs/{id}", "/trace/{id}",
                                               "/models/{key}", "<other>")


def _route_label(route):
    """Bounded metric label for a request path."""
    if route in _KNOWN_ROUTES:
        return route
    if route.startswith("/jobs/"):
        return "/jobs/{id}"
    if route.startswith("/trace/"):
        return "/trace/{id}"
    if route.startswith("/models/"):
        return "/models/{key}"
    return "<other>"


def _jsonable(obj):
    """Recursively convert numpy types for JSON serialisation."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def make_handler(api):
    """Build a request-handler class bound to an :class:`_Api` instance."""
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # structured logging via _timed
            pass

        def _send(self, payload, status=200, headers=None):
            body = json.dumps(_jsonable(payload)).encode("utf-8")
            self._send_bytes(body, "application/json", status,
                             headers=headers)

        def _send_text(self, text, content_type="text/plain; charset=utf-8",
                       status=200):
            self._send_bytes(text.encode("utf-8"), content_type, status)

        def _send_bytes(self, body, content_type, status, headers=None):
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, message, status=400, headers=None):
            self._send({"ok": False, "error": message}, status=status,
                       headers=headers)

        def _timed(self, handler):
            """Run a verb handler through admission + fault injection.

            The ``server.request`` fault point runs before the handler;
            an injected fault is converted to a 503 error envelope —
            the degraded path a load balancer would retry — rather
            than tearing down the connection.  Admission control runs
            next: a rejected request becomes a fast ``429`` with a
            ``Retry-After`` hint.  Either way the request is logged and
            counted.
            """
            self._status = 0
            t0 = time.perf_counter()
            route = _route_label(self.path.split("?")[0].rstrip("/") or "/")
            try:
                try:
                    fault_point("server.request", route)
                    with api.admission.admit(route):
                        handler()
                except InjectedFault as exc:
                    self._fail(f"injected fault: {exc}", status=503)
                except AdmissionRejected as exc:
                    retry = max(int(math.ceil(exc.retry_after_s)), 1)
                    self._fail(f"too many requests: {exc.reason}",
                               status=429,
                               headers={"Retry-After": str(retry)})
            finally:
                seconds = time.perf_counter() - t0
                api.observe_request(self.command, route,
                                    self._status or 500, seconds)

        def do_GET(self):
            self._timed(self._handle_get)

        def do_DELETE(self):
            self._timed(self._handle_delete)

        def do_POST(self):
            self._timed(self._handle_post)

        def _handle_get(self):
            route = self.path.split("?")[0].rstrip("/") or "/"
            try:
                if route in ("/health", "/healthz"):
                    self._send({"ok": True, "data": "alive"})
                elif route == "/readyz":
                    ready = api.ready()
                    if ready:
                        self._send({"ok": True, "data": "ready"})
                    else:
                        self._fail("system not ready (offline phase "
                                   "still pending)", status=503)
                elif route == "/methods":
                    self._send({"ok": True, "data": api.methods()})
                elif route == "/datasets":
                    self._send({"ok": True, "data": api.datasets()})
                elif route == "/models":
                    self._send({"ok": True, "data": api.model_list()})
                elif route == "/metrics":
                    self._send_text(
                        api.metrics_text(),
                        "text/plain; version=0.0.4; charset=utf-8")
                elif route == "/jobs":
                    self._send({"ok": True, "data": api.job_list()})
                elif route == "/grid":
                    self._send({"ok": True, "data": api.grid()})
                elif route.startswith("/jobs/"):
                    self._send({"ok": True,
                                "data": api.job_status(route[len("/jobs/"):])})
                elif route.startswith("/trace/"):
                    self._send(api.trace(route[len("/trace/"):]))
                else:
                    self._fail(f"unknown endpoint {route}", status=404)
            except KeyError as exc:
                self._fail(f"KeyError: {exc}", status=404)
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

        def _handle_delete(self):
            route = self.path.split("?")[0].rstrip("/")
            if not route.startswith("/jobs/"):
                self._fail(f"unknown endpoint {route}", status=404)
                return
            try:
                self._send({"ok": True,
                            "data": api.job_delete(route[len("/jobs/"):])})
            except KeyError as exc:
                self._fail(f"KeyError: {exc}", status=404)
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

        def _read_body(self):
            """Parse the request body; None after sending an error.

            A malformed ``Content-Length`` used to escape as an uncaught
            ``ValueError`` — a stack-trace 500 and a dropped connection;
            now it is a 400 envelope.  Bodies over the configured cap are
            refused with 413 before a byte is buffered, so ``/upload``
            cannot be used to exhaust memory.
            """
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length) if raw_length is not None else 0
            except (TypeError, ValueError):
                self._fail(f"invalid Content-Length header: {raw_length!r}")
                return None
            if length < 0:
                self._fail(f"invalid Content-Length header: {raw_length!r}")
                return None
            if length > api.max_body_bytes:
                self._fail(f"request body of {length} bytes exceeds the "
                           f"{api.max_body_bytes}-byte limit", status=413)
                return None
            raw = self.rfile.read(length) if length else b"{}"
            try:
                return json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._fail(f"invalid JSON body: {exc}")
                return None

        def _handle_post(self):
            route = self.path.split("?")[0].rstrip("/")
            name = _POST_HANDLERS.get(route)
            if name is None:
                self._fail(f"unknown endpoint {route}", status=404)
                return
            body = self._read_body()
            if body is None:
                return
            try:
                self._send({"ok": True, "data": getattr(api, name)(body)})
            except InjectedFault as exc:
                self._fail(f"injected fault: {exc}", status=503)
            except PayloadTooLarge as exc:
                self._fail(str(exc), status=413)
            except PipelineUnavailable as exc:
                self._fail(str(exc), status=500)
            except (KeyError, ValueError, TypeError) as exc:
                self._fail(f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

    return Handler


class _Api:
    """Thin translation layer between JSON bodies and the EasyTime facade."""

    def __init__(self, easytime, jobs=None, logger=None, registry_size=32,
                 registry_ttl_s=None, batch_max=8, batch_window_ms=2.0,
                 admission_limits=None, max_body_bytes=MAX_BODY_BYTES):
        self.et = easytime
        self.jobs = jobs if jobs is not None else JobManager(workers=2)
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()
        # Serving tier: warm models, microbatching, admission control.
        self.models = ModelRegistry(capacity=registry_size,
                                    ttl_s=registry_ttl_s)
        self.batcher = MicroBatcher(max_batch=batch_max,
                                    window_ms=batch_window_ms)
        self.admission = AdmissionController(limits=admission_limits)
        self.max_body_bytes = int(max_body_bytes)
        # One zero-copy store shared by every parallel bench job and by
        # the /forecast dataset path: the content-fingerprint dedup
        # means repeated requests over the same datasets publish
        # nothing new.  Created lazily — a server that never needs it
        # never allocates a segment.
        self._store = None
        self._store_lock = threading.Lock()

    def shared_store(self):
        """The server-wide dataplane store, created on first use."""
        from ..runtime import SharedArrayStore
        with self._store_lock:
            if self._store is None or self._store.closed:
                self._store = SharedArrayStore()
            return self._store

    def close_store(self):
        with self._store_lock:
            if self._store is not None:
                self._store.close()
                self._store = None

    # -- observability ---------------------------------------------------
    def observe_request(self, method, route, status, seconds):
        """Structured access log + request metrics for one HTTP request."""
        self.logger.info("server.request", method=method, route=route,
                         status=int(status),
                         duration_ms=round(seconds * 1000.0, 3))
        telemetry.inc("repro_http_requests_total", method=method,
                      route=route, status=str(int(status)),
                      help="HTTP requests by method, route and status.")
        telemetry.observe("repro_http_request_seconds", seconds, route=route,
                          help="HTTP request handling wall-clock.")

    def metrics_text(self):
        """Prometheus exposition of the live registry."""
        registry = telemetry.get_metrics()
        if registry is None:
            return "# telemetry disabled\n"
        return render_prometheus(registry)

    def trace(self, job_id):
        """Chrome-trace JSON of the spans recorded for one job."""
        job = self.jobs.get(job_id)  # KeyError -> 404 envelope
        related = [s for s in telemetry.spans()
                   if job.trace_id and s.trace_id == job.trace_id]
        return chrome_trace(related)

    def ready(self):
        """Whether the offline phase has run (knowledge base + ensemble)."""
        return bool(getattr(self.et, "_ready", False))

    def grid(self):
        """Status of the distributed benchmark grid (if any ran here)."""
        from ..runtime.distributed import grid_status
        return grid_status()

    def methods(self):
        return [self.et.method_details(name)
                for name in self.et.list_methods()]

    def datasets(self):
        return self.et.list_datasets()

    def upload(self, body):
        series = self.et.upload_dataset(body["csv"],
                                        name=body.get("name", "uploaded"))
        return {"name": series.name, "length": series.length,
                "channels": series.n_channels}

    def recommend(self, body):
        series = self.et.choose_dataset(body["dataset"])
        rec = self.et.recommend(series, k=int(body.get("k", 5)))
        return {"methods": list(rec.methods),
                "probabilities": list(rec.probabilities),
                "characteristics": rec.characteristics.as_dict()}

    def evaluate(self, body):
        series = self.et.choose_dataset(body["dataset"])
        kwargs = {k: body[k] for k in
                  ("strategy", "lookback", "horizon") if k in body}
        if "metrics" in body:
            kwargs["metrics"] = tuple(body["metrics"])
        result = self.et.evaluate_method(body["method"], series, **kwargs)
        return {"method": result.method, "series": result.series,
                "strategy": result.strategy, "horizon": result.horizon,
                "scores": result.scores, "n_windows": result.n_windows}

    # -- serving tier (repro.serving) ------------------------------------
    def forecast(self, body):
        """Warm, microbatched forecast: the production serving path.

        Body: ``{"dataset": name, "method": name}`` plus optional
        ``horizon``, ``lookback`` and method ``params``.  The dataset is
        resolved through the server's long-lived zero-copy store (its
        content digest is part of the model key), the fitted model comes
        from the warm registry (one fit per distinct key, ever, however
        many requests race for it), and the predict is coalesced with
        concurrent requests into one ``predict_batch`` call.
        """
        from ..methods.registry import create
        from ..runtime import resolve

        series = self.et.choose_dataset(body["dataset"])
        method = str(body["method"])
        horizon = int(body.get("horizon", 24))
        lookback = int(body.get("lookback", 96))
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if lookback <= 0:
            raise ValueError("lookback must be positive")
        params = dict(body.get("params") or {})
        # Publish-or-dedup into the long-lived store; the array digest
        # is the dataset's identity in the model key, and the attach
        # cache hands back the original in-process values.
        ref = self.shared_store().publish_series(series)
        series = resolve(ref)
        key = model_key(method, params, lookback, horizon,
                        ref.array.digest)

        def fit_model():
            model = create(method, **params)
            for attr, value in (("lookback", lookback),
                                ("horizon", horizon)):
                if hasattr(model, attr):
                    setattr(model, attr, value)
            model.fit(series.values)
            return model

        entry, served = self.models.get_or_fit(
            key, fit_model, method=method, dataset=series.name,
            lookback=lookback, horizon=horizon)
        forecast = self.batcher.submit(key, entry.model, series.values,
                                       horizon)
        return {"forecast": forecast.tolist(),
                "method": method, "dataset": series.name,
                "horizon": horizon, "channels": int(forecast.shape[1]),
                "served": served, "model_key": key[:16],
                "fit_seconds": round(entry.fit_seconds, 6)}

    def model_list(self):
        """``GET /models``: warm registry plus serving-tier counters."""
        payload = self.models.snapshot()
        payload["batcher"] = self.batcher.stats()
        payload["admission"] = self.admission.stats()
        return payload

    def automl(self, body):
        series = self.et.choose_dataset(body["dataset"])
        forecast, info = self.et.automl(
            series, k=int(body.get("k", 3)),
            horizon=int(body["horizon"]) if "horizon" in body else None)
        return {"forecast": forecast[:, 0].tolist(), "info": info}

    def qa(self, body):
        from ..qa.pipeline import MAX_QUESTION_CHARS
        question = body["question"]
        if not isinstance(question, str):
            raise TypeError("question must be a string")
        if len(question) > MAX_QUESTION_CHARS:
            raise PayloadTooLarge(
                f"question of {len(question)} characters exceeds the "
                f"{MAX_QUESTION_CHARS}-character limit")
        try:
            response = self.et.ask(question)
        except Exception as exc:  # the pipeline promises not to raise;
            # if it does anyway, keep the traceback off the wire and
            # leave a provenance id that indexes the structured log.
            digest = hashlib.sha256(
                question.encode("utf-8")).hexdigest()[:12]
            provenance_id = f"qa-err-{digest}"
            self.logger.info("server.qa_error", provenance=provenance_id,
                             error=f"{type(exc).__name__}: {exc}")
            telemetry.inc("repro_qa_pipeline_errors_total",
                          help="Unexpected exceptions escaping the Q&A "
                               "pipeline.")
            raise PipelineUnavailable(
                "the Q&A pipeline failed to process this question "
                f"(provenance {provenance_id})",
                provenance_id=provenance_id) from exc
        return {"answer": response.answer, "sql": response.sql,
                "chart": response.chart, "table": response.table(),
                "ok": response.ok, "degraded": response.degraded,
                "issues": response.issues,
                "suggestions": response.suggestions,
                "kb": response.kb_name,
                "provenance": response.provenance}

    # -- background jobs (repro.runtime.JobManager) ----------------------
    def job_evaluate(self, body):
        """Submit an /evaluate payload as a background job."""
        job_id = self.jobs.submit(self.evaluate, body,
                                  meta={"kind": "evaluate",
                                        "dataset": body.get("dataset"),
                                        "method": body.get("method")})
        return {"job_id": job_id, "state": "submitted"}

    def job_automl(self, body):
        """Submit an /automl payload as a background job."""
        job_id = self.jobs.submit(self.automl, body,
                                  meta={"kind": "automl",
                                        "dataset": body.get("dataset")})
        return {"job_id": job_id, "state": "submitted"}

    def job_bench(self, body):
        """Submit a one-click benchmark grid as a background job.

        Body: ``{"config": {...}}`` plus optional failure-budget knobs
        ``quarantine_after`` and ``deadline_s``, grid parallelism
        ``workers`` (``> 1`` selects a process pool fed through the
        server's shared zero-copy store) and ``dataplane`` (``false``
        opts a job out of the store).  The job is cooperative:
        ``DELETE /jobs/<id>`` stops the grid between cells with partial
        results preserved, and ``GET /jobs/<id>`` exposes live progress
        (cells done / failed) while it runs.
        """
        config = body["config"]
        job_id = self.jobs.submit(
            self._bench_job, config,
            quarantine_after=body.get("quarantine_after"),
            deadline_s=body.get("deadline_s"),
            workers=body.get("workers"),
            dataplane=body.get("dataplane"),
            meta={"kind": "bench", "tag": config.get("tag")
                  if isinstance(config, dict) else None},
            pass_cancel=True, pass_progress=True)
        return {"job_id": job_id, "state": "submitted"}

    def _bench_job(self, config, quarantine_after=None, deadline_s=None,
                   workers=None, dataplane=None,
                   _cancel=None, _progress=None):
        """Run one benchmark grid cooperatively inside a job slot."""
        # Built here, not at submit time: the deadline must start
        # ticking when a worker slot picks the job up, not while it
        # waits in the queue.
        policy = None
        if quarantine_after or deadline_s:
            policy = FailurePolicy(quarantine_after=quarantine_after,
                                   deadline_s=deadline_s)
        done = [0]

        def tick(result):
            done[0] += 1
            if _progress is not None:
                _progress(cells_done=done[0],
                          last_cell=f"{result.method}/{result.series}")

        # Parallel jobs share the server's long-lived store: datasets a
        # previous job already published resolve by fingerprint without
        # writing a byte.  ``dataplane=False`` in the body opts out.
        store = None
        if workers and int(workers) > 1 and dataplane is not False:
            store = self.shared_store()
        table = self.et.one_click(config, progress=tick, cancel=_cancel,
                                  policy=policy, workers=workers,
                                  dataplane=(False if dataplane is False
                                             else store))
        status_counts = table.status_counts()
        if _progress is not None:
            _progress(cells_done=done[0], status_counts=status_counts)
        return {"rows": table.to_rows(), "failures": table.failure_rows(),
                "status_counts": status_counts}

    def job_status(self, job_id):
        return self.jobs.get(job_id).snapshot()

    def job_list(self):
        return self.jobs.list()

    def job_delete(self, job_id):
        return self.jobs.delete(job_id)


class EasyTimeServer:
    """Embeddable HTTP server around an :class:`~repro.core.EasyTime`.

    Serving-tier knobs
    ------------------
    http_workers:
        ``1`` (default) runs the threaded acceptor pool in-process;
        ``> 1`` forks that many ``SO_REUSEPORT`` worker processes, each
        with its own acceptor pool (CLI ``serve --http-workers``).
    registry_size / registry_ttl_s:
        Warm-model registry capacity (LRU) and freshness bound.
    batch_max / batch_window_ms:
        Microbatcher limits: batch-size cap and max linger of the first
        request in a batch.
    admission_limits:
        ``{route: RouteLimit}`` overriding the default admission policy.
    max_body_bytes:
        Request-body ceiling (413 beyond it).
    """

    def __init__(self, easytime, host="127.0.0.1", port=0, job_workers=2,
                 logger=None, http_workers=1, registry_size=32,
                 registry_ttl_s=None, batch_max=8, batch_window_ms=2.0,
                 admission_limits=None, max_body_bytes=MAX_BODY_BYTES,
                 drain_timeout_s=5.0):
        # Serving implies observing: /metrics and /trace/<id> are part of
        # the API surface, so the collector comes up with the server.
        telemetry.enable()
        self.api = _Api(easytime, jobs=JobManager(workers=job_workers),
                        logger=logger, registry_size=registry_size,
                        registry_ttl_s=registry_ttl_s, batch_max=batch_max,
                        batch_window_ms=batch_window_ms,
                        admission_limits=admission_limits,
                        max_body_bytes=max_body_bytes)
        self.drain_timeout_s = float(drain_timeout_s)
        self.http_workers = int(http_workers)
        handler = make_handler(self.api)
        if self.http_workers > 1:
            # Pre-fork mode: the factory runs inside each forked child,
            # which then swaps in its own SO_REUSEPORT socket.
            def factory(addr):
                return GracefulThreadingHTTPServer(
                    addr, handler, bind_and_activate=False)

            self._pool = PreforkServer(factory, host=host, port=port,
                                       workers=self.http_workers,
                                       on_exit=self._close_api_resources)
            self._httpd = None
        else:
            self._pool = None
            self._httpd = GracefulThreadingHTTPServer((host, port), handler)
        self._thread = None
        self._stopped = False

    @property
    def address(self):
        if self._pool is not None:
            return self._pool.address
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Serve requests without blocking; returns the base URL.

        Threaded mode serves from a daemon thread; pre-fork mode forks
        the worker processes and returns once they all accept.
        """
        if self._pool is not None:
            return self._pool.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self.address

    def stop(self):
        """Graceful, idempotent shutdown.

        Stops accepting, drains in-flight handlers (bounded by
        ``drain_timeout_s``), closes the listening socket, shuts the
        job pool and zero-copy store down, and flushes the access-log
        sink.  Safe to call any number of times, including before
        :meth:`start`.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._pool is not None:
            self._pool.stop(timeout=self.drain_timeout_s + 5.0)
        elif self._thread is None:
            # Never started: shutdown() would block forever waiting for
            # a serve_forever loop that does not exist.
            self._httpd.server_close()
        else:
            self._httpd.shutdown()
            self._httpd.drain(timeout=self.drain_timeout_s)
            self._httpd.server_close()
        self._close_api_resources()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def _close_api_resources(self):
        """Release the API's process-local resources.

        Runs in the parent on :meth:`stop` and inside each pre-fork
        worker on drain — every process that lazily created a
        shared-memory store or buffered log events cleans up its own.
        """
        self.api.jobs.shutdown()
        self.api.close_store()
        # Flush the structured access log before the process can exit.
        self.api.logger.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
