"""JSON-over-HTTP API substituting the demo web frontend.

Each endpoint corresponds to a button or panel in Fig. 4 / Fig. 5:

==========================  =========================================
``GET    /health``           liveness probe
``GET    /methods``          method catalogue (S1 method list)
``GET    /datasets``         choosable datasets (label 2)
``POST   /upload``           upload CSV dataset (label 1)
``POST   /recommend``        characteristics + top-k methods (labels 3-4)
``POST   /evaluate``         evaluate a chosen method (labels 5-7)
``POST   /automl``           automated ensemble forecast (label 8)
``POST   /qa``               natural-language Q&A (Fig. 5)
``POST   /jobs/evaluate``    background evaluation → job id
``POST   /jobs/automl``      background ensemble forecast → job id
``POST   /jobs/bench``       background benchmark grid → job id
``GET    /jobs``             list background jobs
``GET    /jobs/<id>``        poll one job (live progress, then result)
``DELETE /jobs/<id>``        cancel a job (running grids stop between
                             cells with partial results); forget it
                             once terminal
``GET    /metrics``          Prometheus exposition of the metrics registry
``GET    /trace/<id>``       Chrome-trace JSON of one job's span tree
==========================  =========================================

Responses are ``{"ok": bool, "data": ...}`` or
``{"ok": false, "error": str}``.  The server is stdlib-only
(``http.server``).  Long evaluations no longer block the request
thread: the ``/jobs`` endpoints hand work to a
:class:`~repro.runtime.JobManager` and return immediately with a job id
for polling.

Observability: every request is logged as a structured
``server.request`` event (method, route, status, duration) and counted
in the telemetry registry under a normalised route label, so
high-cardinality paths like ``/jobs/job-000123`` cannot explode the
label space.  :class:`EasyTimeServer` enables telemetry on construction
so ``/metrics`` is live from the first request.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import numpy as np

from .. import telemetry
from ..pipeline.logging import RunLogger
from ..resilience import FailurePolicy, InjectedFault, fault_point
from ..runtime import JobManager
from ..telemetry import chrome_trace, render_prometheus

__all__ = ["EasyTimeServer", "make_handler"]

#: Fixed routes; anything else collapses to a bounded template label.
_KNOWN_ROUTES = frozenset({
    "/", "/health", "/methods", "/datasets", "/metrics", "/jobs",
    "/upload", "/recommend", "/evaluate", "/automl", "/qa",
    "/jobs/evaluate", "/jobs/automl", "/jobs/bench",
})


def _route_label(route):
    """Bounded metric label for a request path."""
    if route in _KNOWN_ROUTES:
        return route
    if route.startswith("/jobs/"):
        return "/jobs/{id}"
    if route.startswith("/trace/"):
        return "/trace/{id}"
    return "<other>"


def _jsonable(obj):
    """Recursively convert numpy types for JSON serialisation."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


def make_handler(api):
    """Build a request-handler class bound to an :class:`_Api` instance."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # structured logging via _timed
            pass

        def _send(self, payload, status=200):
            body = json.dumps(_jsonable(payload)).encode("utf-8")
            self._send_bytes(body, "application/json", status)

        def _send_text(self, text, content_type="text/plain; charset=utf-8",
                       status=200):
            self._send_bytes(text.encode("utf-8"), content_type, status)

        def _send_bytes(self, body, content_type, status):
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, message, status=400):
            self._send({"ok": False, "error": message}, status=status)

        def _timed(self, handler):
            """Run a verb handler and log/count the request either way.

            The ``server.request`` fault point runs before the handler;
            an injected fault is converted to a 503 error envelope —
            the degraded path a load balancer would retry — rather
            than tearing down the connection.
            """
            self._status = 0
            t0 = time.perf_counter()
            route = _route_label(self.path.split("?")[0].rstrip("/") or "/")
            try:
                try:
                    fault_point("server.request", route)
                    handler()
                except InjectedFault as exc:
                    self._fail(f"injected fault: {exc}", status=503)
            finally:
                seconds = time.perf_counter() - t0
                api.observe_request(self.command, route,
                                    self._status or 500, seconds)

        def do_GET(self):
            self._timed(self._handle_get)

        def do_DELETE(self):
            self._timed(self._handle_delete)

        def do_POST(self):
            self._timed(self._handle_post)

        def _handle_get(self):
            route = self.path.split("?")[0].rstrip("/") or "/"
            try:
                if route == "/health":
                    self._send({"ok": True, "data": "alive"})
                elif route == "/methods":
                    self._send({"ok": True, "data": api.methods()})
                elif route == "/datasets":
                    self._send({"ok": True, "data": api.datasets()})
                elif route == "/metrics":
                    self._send_text(
                        api.metrics_text(),
                        "text/plain; version=0.0.4; charset=utf-8")
                elif route == "/jobs":
                    self._send({"ok": True, "data": api.job_list()})
                elif route.startswith("/jobs/"):
                    self._send({"ok": True,
                                "data": api.job_status(route[len("/jobs/"):])})
                elif route.startswith("/trace/"):
                    self._send(api.trace(route[len("/trace/"):]))
                else:
                    self._fail(f"unknown endpoint {route}", status=404)
            except KeyError as exc:
                self._fail(f"KeyError: {exc}", status=404)
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

        def _handle_delete(self):
            route = self.path.split("?")[0].rstrip("/")
            if not route.startswith("/jobs/"):
                self._fail(f"unknown endpoint {route}", status=404)
                return
            try:
                self._send({"ok": True,
                            "data": api.job_delete(route[len("/jobs/"):])})
            except KeyError as exc:
                self._fail(f"KeyError: {exc}", status=404)
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

        def _handle_post(self):
            route = self.path.split("?")[0].rstrip("/")
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except json.JSONDecodeError as exc:
                self._fail(f"invalid JSON body: {exc}")
                return
            handlers = {
                "/upload": api.upload,
                "/recommend": api.recommend,
                "/evaluate": api.evaluate,
                "/automl": api.automl,
                "/qa": api.qa,
                "/jobs/evaluate": api.job_evaluate,
                "/jobs/automl": api.job_automl,
                "/jobs/bench": api.job_bench,
            }
            fn = handlers.get(route)
            if fn is None:
                self._fail(f"unknown endpoint {route}", status=404)
                return
            try:
                self._send({"ok": True, "data": fn(body)})
            except (KeyError, ValueError, TypeError) as exc:
                self._fail(f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # noqa: BLE001 - error envelope
                self._fail(f"{type(exc).__name__}: {exc}", status=500)

    return Handler


class _Api:
    """Thin translation layer between JSON bodies and the EasyTime facade."""

    def __init__(self, easytime, jobs=None, logger=None):
        self.et = easytime
        self.jobs = jobs if jobs is not None else JobManager(workers=2)
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()
        # One zero-copy store shared by every parallel bench job: the
        # content-fingerprint dedup means repeated grids over the same
        # datasets publish nothing new.  Created lazily — a server that
        # never runs a parallel grid never allocates a segment.
        self._store = None
        self._store_lock = threading.Lock()

    def shared_store(self):
        """The server-wide dataplane store, created on first use."""
        from ..runtime import SharedArrayStore
        with self._store_lock:
            if self._store is None or self._store.closed:
                self._store = SharedArrayStore()
            return self._store

    def close_store(self):
        with self._store_lock:
            if self._store is not None:
                self._store.close()
                self._store = None

    # -- observability ---------------------------------------------------
    def observe_request(self, method, route, status, seconds):
        """Structured access log + request metrics for one HTTP request."""
        self.logger.info("server.request", method=method, route=route,
                         status=int(status),
                         duration_ms=round(seconds * 1000.0, 3))
        telemetry.inc("repro_http_requests_total", method=method,
                      route=route, status=str(int(status)),
                      help="HTTP requests by method, route and status.")
        telemetry.observe("repro_http_request_seconds", seconds, route=route,
                          help="HTTP request handling wall-clock.")

    def metrics_text(self):
        """Prometheus exposition of the live registry."""
        registry = telemetry.get_metrics()
        if registry is None:
            return "# telemetry disabled\n"
        return render_prometheus(registry)

    def trace(self, job_id):
        """Chrome-trace JSON of the spans recorded for one job."""
        job = self.jobs.get(job_id)  # KeyError -> 404 envelope
        related = [s for s in telemetry.spans()
                   if job.trace_id and s.trace_id == job.trace_id]
        return chrome_trace(related)

    def methods(self):
        return [self.et.method_details(name)
                for name in self.et.list_methods()]

    def datasets(self):
        return self.et.list_datasets()

    def upload(self, body):
        series = self.et.upload_dataset(body["csv"],
                                        name=body.get("name", "uploaded"))
        return {"name": series.name, "length": series.length,
                "channels": series.n_channels}

    def recommend(self, body):
        series = self.et.choose_dataset(body["dataset"])
        rec = self.et.recommend(series, k=int(body.get("k", 5)))
        return {"methods": list(rec.methods),
                "probabilities": list(rec.probabilities),
                "characteristics": rec.characteristics.as_dict()}

    def evaluate(self, body):
        series = self.et.choose_dataset(body["dataset"])
        kwargs = {k: body[k] for k in
                  ("strategy", "lookback", "horizon") if k in body}
        if "metrics" in body:
            kwargs["metrics"] = tuple(body["metrics"])
        result = self.et.evaluate_method(body["method"], series, **kwargs)
        return {"method": result.method, "series": result.series,
                "strategy": result.strategy, "horizon": result.horizon,
                "scores": result.scores, "n_windows": result.n_windows}

    def automl(self, body):
        series = self.et.choose_dataset(body["dataset"])
        forecast, info = self.et.automl(
            series, k=int(body.get("k", 3)),
            horizon=int(body["horizon"]) if "horizon" in body else None)
        return {"forecast": forecast[:, 0].tolist(), "info": info}

    def qa(self, body):
        response = self.et.ask(body["question"])
        return {"answer": response.answer, "sql": response.sql,
                "chart": response.chart, "table": response.table(),
                "ok": response.ok}

    # -- background jobs (repro.runtime.JobManager) ----------------------
    def job_evaluate(self, body):
        """Submit an /evaluate payload as a background job."""
        job_id = self.jobs.submit(self.evaluate, body,
                                  meta={"kind": "evaluate",
                                        "dataset": body.get("dataset"),
                                        "method": body.get("method")})
        return {"job_id": job_id, "state": "submitted"}

    def job_automl(self, body):
        """Submit an /automl payload as a background job."""
        job_id = self.jobs.submit(self.automl, body,
                                  meta={"kind": "automl",
                                        "dataset": body.get("dataset")})
        return {"job_id": job_id, "state": "submitted"}

    def job_bench(self, body):
        """Submit a one-click benchmark grid as a background job.

        Body: ``{"config": {...}}`` plus optional failure-budget knobs
        ``quarantine_after`` and ``deadline_s``, grid parallelism
        ``workers`` (``> 1`` selects a process pool fed through the
        server's shared zero-copy store) and ``dataplane`` (``false``
        opts a job out of the store).  The job is cooperative:
        ``DELETE /jobs/<id>`` stops the grid between cells with partial
        results preserved, and ``GET /jobs/<id>`` exposes live progress
        (cells done / failed) while it runs.
        """
        config = body["config"]
        job_id = self.jobs.submit(
            self._bench_job, config,
            quarantine_after=body.get("quarantine_after"),
            deadline_s=body.get("deadline_s"),
            workers=body.get("workers"),
            dataplane=body.get("dataplane"),
            meta={"kind": "bench", "tag": config.get("tag")
                  if isinstance(config, dict) else None},
            pass_cancel=True, pass_progress=True)
        return {"job_id": job_id, "state": "submitted"}

    def _bench_job(self, config, quarantine_after=None, deadline_s=None,
                   workers=None, dataplane=None,
                   _cancel=None, _progress=None):
        """Run one benchmark grid cooperatively inside a job slot."""
        # Built here, not at submit time: the deadline must start
        # ticking when a worker slot picks the job up, not while it
        # waits in the queue.
        policy = None
        if quarantine_after or deadline_s:
            policy = FailurePolicy(quarantine_after=quarantine_after,
                                   deadline_s=deadline_s)
        done = [0]

        def tick(result):
            done[0] += 1
            if _progress is not None:
                _progress(cells_done=done[0],
                          last_cell=f"{result.method}/{result.series}")

        # Parallel jobs share the server's long-lived store: datasets a
        # previous job already published resolve by fingerprint without
        # writing a byte.  ``dataplane=False`` in the body opts out.
        store = None
        if workers and int(workers) > 1 and dataplane is not False:
            store = self.shared_store()
        table = self.et.one_click(config, progress=tick, cancel=_cancel,
                                  policy=policy, workers=workers,
                                  dataplane=(False if dataplane is False
                                             else store))
        status_counts = table.status_counts()
        if _progress is not None:
            _progress(cells_done=done[0], status_counts=status_counts)
        return {"rows": table.to_rows(), "failures": table.failure_rows(),
                "status_counts": status_counts}

    def job_status(self, job_id):
        return self.jobs.get(job_id).snapshot()

    def job_list(self):
        return self.jobs.list()

    def job_delete(self, job_id):
        return self.jobs.delete(job_id)


class EasyTimeServer:
    """Embeddable HTTP server around an :class:`~repro.core.EasyTime`."""

    def __init__(self, easytime, host="127.0.0.1", port=0, job_workers=2,
                 logger=None):
        # Serving implies observing: /metrics and /trace/<id> are part of
        # the API surface, so the collector comes up with the server.
        telemetry.enable()
        self.api = _Api(easytime, jobs=JobManager(workers=job_workers),
                        logger=logger)
        self._httpd = HTTPServer((host, port), make_handler(self.api))
        self._thread = None

    @property
    def address(self):
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self):
        """Serve requests on a daemon thread; returns the base URL."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self.address

    def stop(self):
        self._httpd.shutdown()
        self._httpd.server_close()
        self.api.jobs.shutdown()
        self.api.close_store()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
