"""Ensemble weight learning on the validation split.

EasyTime "learns the ensemble weights on the validation part of X such
that it fits the best to X": given each candidate's validation forecasts,
find the convex combination minimising squared error.  Weights live on the
probability simplex (non-negative, summing to one) so the ensemble is a
proper weighted average; the solver is projected gradient descent with the
Duchi et al. (2008) Euclidean simplex projection.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_to_simplex", "fit_ensemble_weights", "combine"]


def project_to_simplex(v):
    """Euclidean projection of a vector onto the probability simplex."""
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("simplex projection expects a vector")
    n = v.shape[0]
    u = np.sort(v)[::-1]
    css = np.cumsum(u)
    rho_candidates = u + (1.0 - css) / np.arange(1, n + 1)
    rho = np.nonzero(rho_candidates > 0)[0][-1]
    theta = (css[rho] - 1.0) / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


def fit_ensemble_weights(candidate_forecasts, actual, iterations=300,
                         lr=None, ridge=1e-6):
    """Fit simplex weights minimising ``||sum_k w_k F_k - y||^2``.

    Parameters
    ----------
    candidate_forecasts:
        Array (n_candidates, n_points) — each candidate's validation
        forecasts, flattened.
    actual:
        Array (n_points,) of validation targets.

    Returns
    -------
    (weights, mse):
        The fitted simplex weights and the achieved validation MSE.
    """
    forecasts = np.asarray(candidate_forecasts, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64).reshape(-1)
    if forecasts.ndim != 2:
        raise ValueError("candidate_forecasts must be 2-D")
    k, n = forecasts.shape
    if actual.shape[0] != n:
        raise ValueError(
            f"actual has {actual.shape[0]} points, forecasts have {n}")
    if k == 1:
        residual = forecasts[0] - actual
        return np.ones(1), float((residual ** 2).mean())

    gram = forecasts @ forecasts.T / n + ridge * np.eye(k)
    target = forecasts @ actual / n
    if lr is None:
        eigmax = float(np.linalg.eigvalsh(gram)[-1])
        lr = 1.0 / max(eigmax, 1e-9)
    weights = np.full(k, 1.0 / k)
    for _ in range(iterations):
        grad = gram @ weights - target
        weights = project_to_simplex(weights - lr * grad)
    mse = float(((weights @ forecasts - actual) ** 2).mean())
    return weights, mse


def combine(candidate_forecasts, weights):
    """Weighted average of stacked forecasts (any trailing shape)."""
    forecasts = np.asarray(candidate_forecasts, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if forecasts.shape[0] != weights.shape[0]:
        raise ValueError("one weight per candidate required")
    return np.tensordot(weights, forecasts, axes=(0, 0))
