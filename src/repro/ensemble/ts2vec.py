"""TS2Vec-style universal time-series representation learning.

Re-implements the core of TS2Vec (Yue et al., AAAI 2022) on the autograd
substrate: a dilated-convolution encoder trained with *hierarchical
contrastive loss* over two randomly cropped, randomly masked views of each
series.  Both constituent losses follow the paper:

* temporal contrast — the same timestamp in the two views is a positive
  pair against other timestamps of the same series;
* instance contrast — the same timestamp of other series in the batch are
  the negatives.

The hierarchy comes from max-pooling the representations and re-applying
the dual loss at every scale.  EasyTime's offline phase trains this
encoder on the benchmark series; the resulting embedding is the input to
the method-performance classifier.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, nn, no_grad, optim
from ..autograd import functional as F

__all__ = ["TS2VecEncoder", "TS2Vec", "hierarchical_contrastive_loss",
           "instance_contrastive_loss", "temporal_contrastive_loss"]


class _DilatedBlock(nn.Module):
    """Residual block: two dilated same-padded convolutions with GELU."""

    def __init__(self, channels, kernel, dilation, rng):
        super().__init__()
        pad = (kernel - 1) * dilation // 2
        self.conv1 = nn.Conv1d(channels, channels, kernel,
                               dilation=dilation, padding=pad, rng=rng)
        self.conv2 = nn.Conv1d(channels, channels, kernel,
                               dilation=dilation, padding=pad, rng=rng)

    def forward(self, x):
        h = F.gelu(self.conv1(x))
        h = self.conv2(h)
        return x + h


class TS2VecEncoder(nn.Module):
    """Input projection + dilated conv stack; outputs (B, T, C) reps."""

    def __init__(self, hidden=16, out_dim=16, depth=3, kernel=3, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_proj = nn.Linear(1, hidden, rng=rng)
        self.blocks = nn.ModuleList([
            _DilatedBlock(hidden, kernel, 2 ** i, rng) for i in range(depth)])
        self.output_proj = nn.Conv1d(hidden, out_dim, 1, rng=rng)
        self.out_dim = out_dim

    def forward(self, x):
        """x: (B, T) -> representations (B, T, C)."""
        batch, steps = x.shape
        h = self.input_proj(x.reshape(batch, steps, 1))
        h = h.transpose(0, 2, 1)            # (B, C, T)
        for block in self.blocks:
            h = block(h)
        h = self.output_proj(h)
        return h.transpose(0, 2, 1)         # (B, T, C)


def _masked_log_softmax_diag(logits):
    """log-softmax over the last axis with the diagonal masked out."""
    size = logits.shape[-1]
    mask = np.zeros(logits.shape)
    idx = np.arange(size)
    mask[..., idx, idx] = -1e9
    return F.log_softmax(logits + Tensor(mask), axis=-1)


def instance_contrastive_loss(z1, z2):
    """Contrast series against other series at the same timestamp.

    ``z1``/``z2``: (B, T, C) representations of the two views.
    """
    batch = z1.shape[0]
    if batch <= 1:
        return Tensor(0.0)
    z = Tensor.concat([z1, z2], axis=0)        # (2B, T, C)
    z = z.transpose(1, 0, 2)                   # (T, 2B, C)
    logits = z @ z.transpose(0, 2, 1)          # (T, 2B, 2B)
    logp = _masked_log_softmax_diag(logits)
    steps = z1.shape[1]
    i = np.arange(batch)
    t = np.arange(steps)[:, None]
    # Positive pairs: (i, i+B) and (i+B, i) at every timestamp.
    picked = logp[t, i[None, :], i[None, :] + batch] \
        + logp[t, i[None, :] + batch, i[None, :]]
    return -picked.mean() * 0.5


def temporal_contrastive_loss(z1, z2):
    """Contrast timestamps of a series against other timestamps.

    Positive pair: the same timestamp seen through the two views.
    """
    steps = z1.shape[1]
    if steps <= 1:
        return Tensor(0.0)
    z = Tensor.concat([z1, z2], axis=1)        # (B, 2T, C)
    logits = z @ z.transpose(0, 2, 1)          # (B, 2T, 2T)
    logp = _masked_log_softmax_diag(logits)
    batch = z1.shape[0]
    b = np.arange(batch)[:, None]
    t = np.arange(steps)[None, :]
    picked = logp[b, t, t + steps] + logp[b, t + steps, t]
    return -picked.mean() * 0.5


def hierarchical_contrastive_loss(z1, z2, alpha=0.5):
    """Dual loss applied at every max-pooled scale (the TS2Vec hierarchy)."""
    loss = Tensor(0.0)
    depth = 0
    while True:
        loss = loss + alpha * instance_contrastive_loss(z1, z2) \
            + (1 - alpha) * temporal_contrastive_loss(z1, z2)
        depth += 1
        steps = z1.shape[1]
        if steps <= 1:
            break
        # Max-pool time by 2 (drop a trailing odd timestamp).
        even = steps - steps % 2
        def pool(z):
            b, _, c = z.shape
            return z[:, :even, :].reshape(b, even // 2, 2, c).max(axis=2)
        z1, z2 = pool(z1), pool(z2)
    return loss * (1.0 / depth)


class TS2Vec:
    """Trainer + embedding API around :class:`TS2VecEncoder`.

    Parameters mirror the reference implementation at reduced scale:
    ``window`` is the crop source length, ``crop_len`` the view length.
    """

    def __init__(self, hidden=16, out_dim=16, depth=3, window=96,
                 crop_len=48, batch_size=8, iterations=60, lr=1e-3,
                 mask_prob=0.1, seed=0):
        self.window = window
        self.crop_len = crop_len
        self.batch_size = batch_size
        self.iterations = iterations
        self.lr = lr
        self.mask_prob = mask_prob
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.encoder = TS2VecEncoder(hidden=hidden, out_dim=out_dim,
                                     depth=depth, rng=self._rng)
        self.loss_history = []

    # -- data handling ---------------------------------------------------
    @staticmethod
    def _normalise(values):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 2:
            values = values.mean(axis=1)
        std = values.std()
        return (values - values.mean()) / (std if std > 1e-12 else 1.0)

    def _sample_windows(self, series_bank):
        take = self._rng.choice(len(series_bank),
                                size=min(self.batch_size, len(series_bank)),
                                replace=len(series_bank) < self.batch_size)
        out = []
        for i in take:
            values = series_bank[i]
            if len(values) < self.window:
                values = np.pad(values, (self.window - len(values), 0),
                                mode="edge")
            start = self._rng.integers(0, len(values) - self.window + 1)
            out.append(values[start:start + self.window])
        return np.stack(out)

    def _two_crops(self, windows):
        """Two overlapping crops + random masking, shared per batch."""
        max_off = self.window - self.crop_len
        a1 = int(self._rng.integers(0, max_off + 1))
        lo = max(0, a1 - self.crop_len + 1)
        hi = min(max_off, a1 + self.crop_len - 1)
        a2 = int(self._rng.integers(lo, hi + 1))
        crop1 = windows[:, a1:a1 + self.crop_len].copy()
        crop2 = windows[:, a2:a2 + self.crop_len].copy()
        for crop in (crop1, crop2):
            mask = self._rng.random(crop.shape) < self.mask_prob
            crop[mask] = 0.0
        # Align the overlap so timestamp t in view 1 matches view 2.
        left = max(a1, a2)
        right = min(a1, a2) + self.crop_len
        o1 = slice(left - a1, right - a1)
        o2 = slice(left - a2, right - a2)
        return crop1, crop2, o1, o2

    # -- training --------------------------------------------------------
    def fit(self, series_list):
        """Train the encoder on raw series (arrays or TimeSeries)."""
        bank = [self._normalise(getattr(s, "values", s)) for s in series_list]
        if not bank:
            raise ValueError("TS2Vec needs at least one training series")
        optimizer = optim.AdamW(self.encoder.parameters(), lr=self.lr,
                                weight_decay=1e-4)
        self.encoder.train()
        for _ in range(self.iterations):
            windows = self._sample_windows(bank)
            crop1, crop2, o1, o2 = self._two_crops(windows)
            z1 = self.encoder(Tensor(crop1))[:, o1, :]
            z2 = self.encoder(Tensor(crop2))[:, o2, :]
            loss = hierarchical_contrastive_loss(z1, z2)
            optimizer.zero_grad()
            loss.backward()
            optim.clip_grad_norm(self.encoder.parameters(), 5.0)
            optimizer.step()
            self.loss_history.append(loss.item())
        self.encoder.eval()
        return self

    # -- inference ---------------------------------------------------------
    def _window_for(self, series):
        """Normalised, edge-padded trailing window of one series."""
        values = self._normalise(getattr(series, "values", series))
        if len(values) < self.window:
            values = np.pad(values, (self.window - len(values), 0),
                            mode="edge")
        return values[-self.window:]

    def encode(self, series):
        """Embed one series into a fixed vector (max pool over time)."""
        window = self._window_for(series)
        with no_grad():
            reps = self.encoder(Tensor(window[None, :]))
            return reps.max(axis=1).data[0]

    def encode_many(self, series_list):
        """Embed several series in one encoder forward; returns (n, out_dim)."""
        if not series_list:
            return np.zeros((0, self.encoder.out_dim))
        windows = np.stack([self._window_for(s) for s in series_list])
        with no_grad():
            reps = self.encoder(Tensor(windows))
            return reps.max(axis=1).data
