"""Automated Ensemble module (the paper's core demonstration feature)."""

from .auto import AutoEnsemble, EnsembleForecaster, Recommendation
from .classifier import PerformanceClassifier, ndcg_at_k, topk_overlap
from .ts2vec import (TS2Vec, TS2VecEncoder, hierarchical_contrastive_loss,
                     instance_contrastive_loss, temporal_contrastive_loss)
from .weights import combine, fit_ensemble_weights, project_to_simplex

__all__ = [
    "AutoEnsemble", "EnsembleForecaster", "Recommendation",
    "PerformanceClassifier", "ndcg_at_k", "topk_overlap", "TS2Vec",
    "TS2VecEncoder", "hierarchical_contrastive_loss",
    "instance_contrastive_loss", "temporal_contrastive_loss",
    "project_to_simplex", "fit_ensemble_weights", "combine",
]
