"""The Automated Ensemble module: offline pretraining + online inference.

Mirrors Fig. 2 of the paper end to end:

offline
    1. train TS2Vec on the benchmark series to get a series encoder;
    2. train a performance classifier (soft-label loss) on the knowledge
       base's method × series error matrix.

online (new dataset X)
    3. embed X, ask the classifier for the top-k promising methods;
    4. train the k candidates on the training part of X;
    5. learn ensemble weights on the validation part of X;
    6. forecast with the weighted ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..characteristics import extract
from ..datasets.split import SplitSpec, train_val_test_split
from ..methods.base import Forecaster, check_history
from ..methods.registry import create
from ..runtime import SerialExecutor, SharedArrayStore, Task, resolve
from .classifier import PerformanceClassifier
from .ts2vec import TS2Vec
from .weights import combine, fit_ensemble_weights

__all__ = ["AutoEnsemble", "EnsembleForecaster", "Recommendation"]


def _fit_candidate(name, lookback, horizon, train, val, windows):
    """Fit one candidate and forecast the shared validation windows.

    Module-level so a :class:`~repro.runtime.ProcessExecutor` can ship the
    embarrassingly-parallel top-k fits to worker processes; returns the
    fitted model together with its flattened validation forecasts.
    ``train``/``val`` may arrive as dataplane :class:`ArrayRef` handles —
    :func:`~repro.runtime.resolve` rehydrates them (and passes plain
    arrays straight through), so the k candidates share one published
    copy of the splits instead of pickling them k times.
    """
    train = resolve(train)
    val = resolve(val)
    model = create(name)
    for attr, value in (("lookback", lookback), ("horizon", horizon)):
        if hasattr(model, attr):
            setattr(model, attr, value)
    model.fit(train, val)
    parts = [model.predict(val[start:origin], target_end - origin).reshape(-1)
             for start, origin, target_end in windows]
    preds = np.concatenate(parts) if parts else np.empty(0)
    return model, preds


@dataclass(frozen=True)
class Recommendation:
    """Ranked method suggestions for one series."""

    methods: tuple                  # names, most promising first
    probabilities: tuple            # matching classifier probabilities
    characteristics: object = None  # Characteristics of the series

    def top(self, k=1):
        return list(self.methods[:k])


class EnsembleForecaster(Forecaster):
    """A fitted convex combination of candidate forecasters."""

    name = "auto_ensemble"
    category = "ensemble"

    def __init__(self, candidates, weights):
        super().__init__()
        if len(candidates) != len(weights):
            raise ValueError("one weight per candidate required")
        if not candidates:
            raise ValueError("ensemble needs at least one candidate")
        self.candidates = list(candidates)      # [(name, fitted model)]
        self.weights = np.asarray(weights, dtype=np.float64)
        self._mark_fitted()

    def fit(self, train, val=None):
        """Candidates arrive pre-fitted from AutoEnsemble; fit is a no-op."""
        return self

    def predict(self, history, horizon):
        history = check_history(history)
        stack = np.stack([model.predict(history, horizon)
                          for _, model in self.candidates])
        return combine(stack, self.weights)

    def describe(self):
        return {name: float(w)
                for (name, _), w in zip(self.candidates, self.weights)}


class AutoEnsemble:
    """End-to-end automated model selection and ensembling.

    Parameters
    ----------
    knowledge_base:
        A populated :class:`~repro.knowledge.KnowledgeBase`.
    registry:
        The :class:`~repro.datasets.DatasetRegistry` that generated the
        knowledge base's series (needed to re-materialise them for TS2Vec).
    feature_mode:
        ``"ts2vec"`` (paper) or ``"characteristics"`` (hand-crafted
        features — the E8 ablation baseline).
    """

    def __init__(self, knowledge_base, registry=None, feature_mode="ts2vec",
                 metric="mae", classifier_loss="soft", lookback=96,
                 horizon=24, seed=0, ts2vec_params=None,
                 classifier_params=None, executor=None, store=None):
        if feature_mode not in ("ts2vec", "characteristics"):
            raise ValueError(
                f"unknown feature_mode {feature_mode!r}")
        self.kb = knowledge_base
        self.registry = registry
        self.feature_mode = feature_mode
        self.metric = metric
        self.classifier_loss = classifier_loss
        self.lookback = lookback
        self.horizon = horizon
        self.seed = seed
        self.ts2vec_params = dict(ts2vec_params or {})
        self.classifier_params = dict(classifier_params or {})
        # Candidate fits in fit_ensemble() are embarrassingly parallel; a
        # repro.runtime executor fans them out (serial by default).  An
        # optional SharedArrayStore publishes the train/val splits once
        # so process-pool candidates receive ~100-byte refs; without one
        # a run-scoped store is opened per fit for process executors.
        self.executor = executor
        self.store = store
        self.encoder = None
        self.classifier = None
        self.method_names = []
        self._pretrained = False

    # -- offline phase ----------------------------------------------------
    def _materialise_series(self, names):
        if self.registry is None:
            raise RuntimeError(
                "a DatasetRegistry is required to re-materialise benchmark "
                "series for TS2Vec pretraining")
        return [self.registry.get(name) for name in names]

    def _embed_series(self, series):
        if self.feature_mode == "ts2vec":
            return self.encoder.encode(series)
        return extract(series).as_vector()

    def pretrain(self, progress=None):
        """Run the offline phase; returns self."""
        with telemetry.span("ensemble.pretrain",
                            feature_mode=self.feature_mode):
            series_names, methods, errors = self.kb.error_matrix(self.metric)
            if not series_names:
                raise RuntimeError("knowledge base has no benchmark results")
            self.method_names = methods
            series_list = self._materialise_series(series_names)
            if self.feature_mode == "ts2vec":
                with telemetry.span("ensemble.ts2vec",
                                    n_series=len(series_list)):
                    self.encoder = TS2Vec(seed=self.seed,
                                          **self.ts2vec_params)
                    self.encoder.fit(series_list)
                    if progress:
                        progress("ts2vec trained")
                    embeddings = self.encoder.encode_many(series_list)
            else:
                embeddings = np.stack([extract(s).as_vector()
                                       for s in series_list])
            with telemetry.span("ensemble.classifier",
                                n_methods=len(methods)):
                params = {"hidden": 64, "epochs": 150,
                          **self.classifier_params}
                self.classifier = PerformanceClassifier(
                    n_methods=len(methods), input_dim=embeddings.shape[1],
                    loss=self.classifier_loss, seed=self.seed, **params)
                self.classifier.fit(embeddings, errors)
            if progress:
                progress("classifier trained")
            self._pretrained = True
        return self

    def _require_pretrained(self):
        if not self._pretrained:
            raise RuntimeError("call pretrain() before online inference")

    # -- online phase -------------------------------------------------------
    def recommend(self, series, k=5):
        """Top-k promising methods for a new series (Fig. 4, label 4)."""
        self._require_pretrained()
        embedding = self._embed_series(series)
        probs = self.classifier.predict_proba(embedding)[0]
        order = np.argsort(-probs)[:k]
        return Recommendation(
            methods=tuple(self.method_names[i] for i in order),
            probabilities=tuple(float(probs[i]) for i in order),
            characteristics=extract(series),
        )

    def _val_windows(self, val, horizon):
        """Rolling (history_start, origin, target_end) triples over X.val."""
        windows = []
        origin = self.lookback
        while origin < len(val):
            target_end = min(origin + horizon, len(val))
            windows.append((max(origin - self.lookback, 0), origin,
                            target_end))
            origin += horizon
        return windows

    def fit_ensemble(self, series, k=3, split=SplitSpec()):
        """Train top-k candidates on X.train, weight them on X.val.

        Returns ``(EnsembleForecaster, info_dict)``.
        """
        self._require_pretrained()
        if k < 1:
            raise ValueError("k must be >= 1")
        with telemetry.span("ensemble.fit", k=k,
                            series=getattr(series, "name", "series")):
            return self._fit_ensemble(series, k, split)

    def _fit_ensemble(self, series, k, split):
        values = series.values if hasattr(series, "values") else \
            np.asarray(series, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        recommendation = self.recommend(series, k=k)
        train, val, _ = train_val_test_split(values, split,
                                             lookback=self.lookback)
        windows = self._val_windows(val, self.horizon)
        if not windows:
            raise ValueError(
                "validation segment too short for ensemble weight fitting")
        actual = np.concatenate([val[origin:target_end].reshape(-1)
                                 for _, origin, target_end in windows])
        executor = self.executor or SerialExecutor(base_seed=self.seed)
        store, owns_store = self.store, False
        if store is None and getattr(executor, "kind", "serial") == \
                "process":
            store, owns_store = SharedArrayStore(), True
        if store is not None:
            train_arg, val_arg = (store.publish_array(train),
                                  store.publish_array(val))
        else:
            train_arg, val_arg = train, val
        series_name = getattr(series, "name", "series")
        tasks = [Task(key=f"ensemble|{series_name}|{name}",
                      fn=_fit_candidate,
                      args=(name, self.lookback, self.horizon, train_arg,
                            val_arg, windows))
                 for name in recommendation.methods]
        fitted, rows, names = [], [], []
        try:
            outcomes = executor.map_tasks(tasks)
        finally:
            if owns_store:
                store.close()
        for name, outcome in zip(recommendation.methods, outcomes):
            if not outcome.ok:  # drop unstable candidates
                continue
            model, preds = outcome.value
            if preds.size != actual.size:
                continue
            fitted.append((name, model))
            rows.append(preds)
            names.append(name)
        if not fitted:
            raise RuntimeError("every candidate failed on this series")
        weights, val_mse = fit_ensemble_weights(np.stack(rows), actual)
        ensemble = EnsembleForecaster(fitted, weights)
        info = {
            "recommended": list(recommendation.methods),
            "used": names,
            "weights": ensemble.describe(),
            "val_mse": val_mse,
            "characteristics": recommendation.characteristics.as_dict(),
        }
        return ensemble, info

    def forecast(self, series, horizon=None, k=3):
        """One-call convenience: build the ensemble and forecast the future."""
        horizon = horizon or self.horizon
        ensemble, info = self.fit_ensemble(series, k=k)
        values = series.values if hasattr(series, "values") else \
            np.asarray(series, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        forecast = ensemble.predict(values[-self.lookback:], horizon)
        return forecast, info
