"""Method-performance classifier trained with the soft-label loss.

The offline half of the Automated Ensemble (Fig. 2): given a series
embedding, predict a probability ranking over forecasting methods.  The
training target is not the single best method but a *soft* distribution
derived from every method's error (SimpleTS soft-label loss), so the
classifier learns "method A and B are both near-optimal here" instead of
an arbitrary tie-break.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, losses, nn, no_grad, optim
from ..autograd import functional as F
from ..datasets.split import batch_indices

__all__ = ["PerformanceClassifier", "ndcg_at_k", "topk_overlap"]


def ndcg_at_k(scores_true, ranking_pred, k):
    """Normalised discounted cumulative gain of a predicted ranking.

    ``scores_true``: relevance per item (higher = better method, e.g.
    negated normalised error).  ``ranking_pred``: item indices, best first.
    """
    scores_true = np.asarray(scores_true, dtype=float)
    k = min(k, len(scores_true))
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((scores_true[np.asarray(ranking_pred)[:k]] * discounts).sum())
    ideal_order = np.argsort(-scores_true)
    idcg = float((scores_true[ideal_order[:k]] * discounts).sum())
    return dcg / idcg if idcg > 0 else 0.0


def topk_overlap(true_errors, ranking_pred, k):
    """|top-k(pred) ∩ top-k(true)| / k, the recommendation hit rate."""
    true_errors = np.asarray(true_errors, dtype=float)
    k = min(k, len(true_errors))
    true_top = set(np.argsort(true_errors)[:k].tolist())
    pred_top = set(list(ranking_pred)[:k])
    return len(true_top & pred_top) / k


class PerformanceClassifier:
    """MLP over series embeddings → probability ranking of methods.

    ``loss="soft"`` uses the SimpleTS soft-label loss; ``loss="hard"``
    trains plain cross-entropy on the argmin-error label (the E8 ablation
    baseline).
    """

    def __init__(self, n_methods, input_dim, hidden=64, epochs=200,
                 batch_size=32, lr=5e-3, loss="soft", temperature=0.3,
                 weight_decay=1e-4, seed=0):
        if loss not in ("soft", "hard"):
            raise ValueError(f"loss must be 'soft' or 'hard', got {loss!r}")
        self.n_methods = n_methods
        self.input_dim = input_dim
        self.loss = loss
        self.temperature = temperature
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._rng = rng
        self.net = nn.Sequential(
            nn.Linear(input_dim, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(hidden, n_methods, rng=rng),
        )
        self._feat_mean = None
        self._feat_std = None
        self._fitted = False

    # -- training ----------------------------------------------------------
    def fit(self, embeddings, error_matrix):
        """Train on (n_series, dim) embeddings and (n_series, n_methods)
        errors; rows with any non-finite error are dropped."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        error_matrix = np.asarray(error_matrix, dtype=np.float64)
        if embeddings.shape[0] != error_matrix.shape[0]:
            raise ValueError("embeddings/errors row mismatch")
        if error_matrix.shape[1] != self.n_methods:
            raise ValueError(
                f"error matrix has {error_matrix.shape[1]} methods, "
                f"classifier expects {self.n_methods}")
        keep = np.isfinite(error_matrix).all(axis=1) \
            & np.isfinite(embeddings).all(axis=1)
        embeddings, error_matrix = embeddings[keep], error_matrix[keep]
        if len(embeddings) < 2:
            raise ValueError("need at least 2 clean training rows")

        self._feat_mean = embeddings.mean(axis=0)
        std = embeddings.std(axis=0)
        self._feat_std = np.where(std > 1e-12, std, 1.0)
        x = (embeddings - self._feat_mean) / self._feat_std

        soft = losses.soft_labels_from_errors(error_matrix,
                                              temperature=self.temperature)
        hard = np.argmin(error_matrix, axis=1)

        optimizer = optim.AdamW(self.net.parameters(), lr=self.lr,
                                weight_decay=self.weight_decay)
        scheduler = optim.CosineAnnealingLR(optimizer, t_max=self.epochs)
        self.net.train()
        for _ in range(self.epochs):
            for batch in batch_indices(len(x), self.batch_size,
                                       rng=self._rng):
                logits = self.net(Tensor(x[batch]))
                if self.loss == "soft":
                    loss = losses.soft_label_loss(logits, soft[batch])
                else:
                    loss = losses.cross_entropy(logits, hard[batch])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            scheduler.step()
        self.net.eval()
        self._fitted = True
        return self

    # -- inference -----------------------------------------------------------
    def predict_proba(self, embeddings):
        """Probability ranking of methods; (n, n_methods)."""
        if not self._fitted:
            raise RuntimeError("classifier used before fit()")
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        x = (embeddings - self._feat_mean) / self._feat_std
        with no_grad():
            probs = F.softmax(self.net(Tensor(x)), axis=-1)
        return probs.data

    def rank(self, embedding):
        """Method indices sorted most-promising first."""
        probs = self.predict_proba(embedding)[0]
        return np.argsort(-probs)

    def top_k(self, embedding, k):
        """The top-k method indices for one embedding."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self.rank(embedding)[:k]
