"""Loss functions used across the forecasting methods and the recommender.

Includes the *soft-label loss* of SimpleTS (Yao et al., VLDB 2023) that the
EasyTime paper uses to train the automated-ensemble classifier: instead of a
one-hot "best method" target, the classifier is trained against a soft
distribution derived from per-method accuracies, so near-ties are preserved.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "mse_loss", "mae_loss", "huber_loss", "cross_entropy",
    "soft_label_loss", "soft_labels_from_errors", "kl_divergence",
]


def mse_loss(pred, target):
    """Mean squared error."""
    target = Tensor.ensure(target)
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred, target):
    """Mean absolute error."""
    target = Tensor.ensure(target)
    return (pred - target).abs().mean()


def huber_loss(pred, target, delta=1.0):
    """Huber loss: quadratic near zero, linear in the tails."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    target = Tensor.ensure(target)
    diff = pred - target
    abs_diff = diff.abs()
    quad = abs_diff.clip(0.0, delta)
    # 0.5*q^2 + delta*(|d| - q); equals 0.5 d^2 inside, delta(|d|-delta/2) outside.
    return (quad * quad * 0.5 + (abs_diff - quad) * delta).mean()


def cross_entropy(logits, target_index):
    """Cross entropy between logits (batch, classes) and integer labels."""
    logp = F.log_softmax(logits, axis=-1)
    target_index = np.asarray(target_index, dtype=int)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), target_index]
    return -picked.mean()


def kl_divergence(target_probs, logp):
    """KL(target || softmax) where ``logp`` is log-probabilities (graph node)."""
    target = np.asarray(target_probs)
    entropy = float(np.sum(np.where(target > 0, target * np.log(target + 1e-12), 0.0)))
    cross = -(logp * Tensor(target)).sum()
    return cross * (1.0 / target.shape[0]) + entropy / target.shape[0]


def soft_label_loss(logits, target_probs):
    """Soft-label classification loss (SimpleTS): CE against soft targets.

    ``target_probs`` has shape (batch, classes) and rows summing to one.
    """
    logp = F.log_softmax(logits, axis=-1)
    target = np.asarray(target_probs)
    if target.shape != tuple(logits.shape):
        raise ValueError(
            f"target shape {target.shape} does not match logits {tuple(logits.shape)}")
    return -(logp * Tensor(target)).sum() * (1.0 / target.shape[0])


def soft_labels_from_errors(errors, temperature=1.0):
    """Convert a per-method error matrix into soft labels.

    Parameters
    ----------
    errors:
        Array (n_series, n_methods) of *errors* (lower is better).  Rows are
        min-max normalised, negated, and pushed through a temperature
        softmax, so the best method receives the highest probability and
        near-ties receive near-equal mass — the property the soft-label
        loss exploits.
    """
    errors = np.asarray(errors, dtype=float)
    if errors.ndim != 2:
        raise ValueError("errors must be a 2-D (series, methods) matrix")
    lo = errors.min(axis=1, keepdims=True)
    hi = errors.max(axis=1, keepdims=True)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    score = -(errors - lo) / span              # 0 for best, -1 for worst
    score = score / max(temperature, 1e-9)
    score -= score.max(axis=1, keepdims=True)
    probs = np.exp(score)
    return probs / probs.sum(axis=1, keepdims=True)
