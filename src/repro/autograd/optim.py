"""Gradient-descent optimizers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam", "AdamW", "StepLR", "CosineAnnealingLR",
           "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self):
        if self.weight_decay:
            for p in self.parameters:
                p.data = p.data * (1.0 - self.lr * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.5):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self):
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine decay from the initial lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max, eta_min=0.0):
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self):
        self._epoch += 1
        frac = min(self._epoch, self.t_max) / self.t_max
        self.optimizer.lr = self.eta_min + 0.5 * (self._base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * frac))
