"""A from-scratch numpy autodiff + neural-network substrate.

Substitutes the PyTorch stack the paper's deep forecasting methods and the
TS2Vec representation learner run on (see DESIGN.md, substitution table).
"""

from . import functional, losses, nn, optim
from .gradcheck import check_gradients, numerical_gradient
from .tensor import (Tensor, get_default_dtype, is_grad_enabled, no_grad,
                     set_default_dtype)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "nn", "optim", "functional",
    "losses", "check_gradients", "numerical_gradient",
    "set_default_dtype", "get_default_dtype",
]
