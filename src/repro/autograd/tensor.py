"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the deep-learning substrate used by the
EasyTime reproduction.  It provides a :class:`Tensor` wrapping a numpy
``ndarray`` together with a dynamically built computation graph.  Calling
:meth:`Tensor.backward` on a scalar output propagates gradients to every
tensor created with ``requires_grad=True``.

The design follows the classic "define-by-run" tape approach: every
operation records a backward closure and its parent tensors; ``backward``
topologically sorts the graph and applies the closures in reverse order.
Broadcasting is supported for all elementwise operations; gradients are
summed back to the original operand shapes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "set_default_dtype",
           "get_default_dtype"]

_GRAD_ENABLED = True

#: Dtype used for leaves created from python scalars / lists and for
#: non-float payloads.  Float32/float64 ndarrays keep their dtype so a
#: model cast to float32 stays float32 through the whole graph.
_DEFAULT_DTYPE = np.dtype(np.float64)

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype):
    """Set the process-wide default floating dtype (float32 or float64)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    _DEFAULT_DTYPE = dtype
    return dtype


def get_default_dtype():
    """Return the current default floating dtype."""
    return _DEFAULT_DTYPE


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return True when operations record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    Numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the gradient of a broadcast is the sum over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data, dtype=None):
    if isinstance(data, np.ndarray):
        if dtype is not None:
            return data.astype(dtype, copy=False)
        if data.dtype in _FLOAT_DTYPES:
            return data
        return data.astype(_DEFAULT_DTYPE)
    return np.asarray(data, dtype=dtype if dtype is not None
                      else _DEFAULT_DTYPE)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Float32/float64 ndarrays keep their dtype;
        everything else is converted to the default dtype (float64 unless
        changed via :func:`set_default_dtype`), or to an explicit
        ``dtype``.
    requires_grad:
        When True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev",
                 "name", "_grad_owned")

    def __init__(self, data, requires_grad=False, _prev=(), name=None,
                 dtype=None):
        self.data = _as_array(data, dtype=dtype)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._prev = _prev if (_GRAD_ENABLED and _prev) else ()
        self.name = name
        self._grad_owned = False

    @classmethod
    def _raw(cls, data):
        """Wrap an ndarray with no graph bookkeeping (no_grad fast path)."""
        out = cls.__new__(cls)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data)
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._prev = ()
        out.name = None
        out._grad_owned = False
        return out

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad=False, dtype=None):
        return Tensor(np.zeros(shape, dtype=dtype or _DEFAULT_DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad=False, dtype=None):
        return Tensor(np.ones(shape, dtype=dtype or _DEFAULT_DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng=None, scale=1.0, requires_grad=False, dtype=None):
        rng = rng if rng is not None else np.random.default_rng()
        data = rng.standard_normal(shape) * scale
        if dtype is not None:
            data = data.astype(dtype)
        return Tensor(data, requires_grad=requires_grad)

    @staticmethod
    def ensure(value):
        """Coerce a scalar / ndarray / Tensor into a Tensor."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self):
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def __len__(self):
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------
    def _make(self, data, parents, backward):
        """Create an output tensor wired into the graph.

        Under ``no_grad`` this skips parent bookkeeping entirely — no
        ``requires_grad`` scan, no parent tuple, no backward closure — so
        inference pays only for the payload wrap.
        """
        if not _GRAD_ENABLED:
            return Tensor._raw(data)
        if any(p.requires_grad for p in parents):
            out = Tensor._raw(data)
            out.requires_grad = True
            out._prev = tuple(parents)
            out._backward = backward
            return out
        return Tensor._raw(data)

    def _accumulate(self, grad):
        grad = np.asarray(grad)
        if grad.dtype != self.data.dtype:
            grad = grad.astype(self.data.dtype)
        if self.grad is None:
            # Views must be materialised; whole arrays are adopted by
            # reference (not owned: a producer may hand the same buffer to
            # several parents, so it must never be mutated in place).
            if grad.base is not None:
                self.grad = grad.copy()
                self._grad_owned = True
            else:
                self.grad = grad
                self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def _accumulate_indexed(self, key, grad):
        """Accumulate a gradient into a sub-slice of this tensor's grad.

        The scatter counterpart of ``__getitem__``: writes land directly in
        the (owned) gradient buffer instead of materialising a full-size
        zeros array per slice — the hot path when a tensor is sliced many
        times, e.g. per-timestep reads of a precomputed GRU projection.
        """
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
            self._grad_owned = True
        elif not self._grad_owned:
            self.grad = self.grad.copy()
            self._grad_owned = True
        key_t = key if isinstance(key, tuple) else (key,)
        if all(isinstance(k, (int, np.integer, slice)) or k is None
               or k is Ellipsis for k in key_t):
            # Basic indexing never repeats an element, so a slice-add is
            # equivalent to (and much faster than) the buffered np.add.at.
            self.grad[key] += grad
        else:
            np.add.at(self.grad, key, grad)

    def zero_grad(self):
        self.grad = None
        self._grad_owned = False

    def backward(self, grad=None):
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (and must be supplied for non-scalar
        outputs only when a non-trivial seed is wanted).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo, visited = [], set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __neg__(self):
        def backward(g):
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other):
        return Tensor.ensure(other) + (-self)

    def __truediv__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data ** 2), other.shape))

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor.ensure(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(self.data ** exponent, (self,), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self):
        def backward(g):
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * 0.5 / np.maximum(out_data, 1e-300))

        return self._make(out_data, (self,), backward)

    def abs(self):
        def backward(g):
            if self.requires_grad:
                self._accumulate(g * np.sign(self.data))

        return self._make(np.abs(self.data), (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(self.data * mask, (self,), backward)

    def clip(self, low, high):
        """Clamp values; gradient passes only through the unclipped region."""
        mask = (self.data >= low) & (self.data <= high)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        def backward(g):
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims),
                          (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims=False):
        centred = self - self.mean(axis=axis, keepdims=True)
        return (centred * centred).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            # Split gradient equally among ties to keep gradcheck stable.
            counts = mask.sum(axis=axis if axis is not None else None,
                              keepdims=True)
            self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)

        return self._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims=False):
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Linear algebra and shaping
    # ------------------------------------------------------------------
    def matmul(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                ga = np.matmul(g, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.matmul(np.swapaxes(self.data, -1, -2), g)
                other._accumulate(_unbroadcast(gb, other.shape))

        # BLAS picks a different (row-inconsistent) partitioning for
        # column-major right operands past a size threshold, which would
        # make batched inference disagree bitwise with looped inference.
        # Normalising B to row-major keeps row b of A @ B independent of
        # the number of rows in A; the copy is tiny next to the GEMM.
        b = other.data
        if b.ndim == 2 and not b.flags.c_contiguous:
            b = np.ascontiguousarray(b)
        return self._make(np.matmul(self.data, b), (self, other), backward)

    __matmul__ = matmul

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape

        def backward(g):
            if self.requires_grad:
                self._accumulate(np.asarray(g).reshape(old_shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(g):
            if self.requires_grad:
                self._accumulate(np.transpose(g, inverse))

        return self._make(np.transpose(self.data, axes), (self,), backward)

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, key):
        def backward(g):
            if self.requires_grad:
                self._accumulate_indexed(key, g)

        return self._make(self.data[key], (self,), backward)

    def pad1d(self, left, right, value=0.0):
        """Pad the last axis with a constant (used by causal convolutions)."""
        widths = [(0, 0)] * (self.ndim - 1) + [(left, right)]
        length = self.shape[-1]

        def backward(g):
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 1) + [slice(left, left + length)]
                self._accumulate(np.asarray(g)[tuple(sl)])

        return self._make(
            np.pad(self.data, widths, constant_values=value), (self,), backward)

    @staticmethod
    def concat(tensors, axis=0):
        tensors = [Tensor.ensure(t) for t in tensors]
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g):
            g = np.asarray(g)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(start, stop)
                    tensor._accumulate(g[tuple(sl)])

        data = np.concatenate([t.data for t in tensors], axis=axis)
        req = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=req,
                     _prev=tuple(tensors) if req else ())
        if req:
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors, axis=0):
        expanded = []
        for t in tensors:
            t = Tensor.ensure(t)
            shape = list(t.shape)
            shape.insert(axis if axis >= 0 else t.ndim + 1 + axis, 1)
            expanded.append(t.reshape(shape))
        return Tensor.concat(expanded, axis=axis)
