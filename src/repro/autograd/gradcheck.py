"""Numerical gradient checking for the autograd engine."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn, tensor, eps=1e-6):
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn().data)
        flat[i] = orig - eps
        minus = float(fn().data)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(fn, tensors, eps=1e-6, atol=1e-4, rtol=1e-3):
    """Compare analytic vs numerical gradients for scalar ``fn(*)``.

    ``fn`` must rebuild the graph on each call from the given leaf tensors.
    Returns the maximum absolute discrepancy; raises AssertionError on
    mismatch so it can be used directly in tests.
    """
    for t in tensors:
        t.zero_grad()
    out = fn()
    if out.data.size != 1:
        raise ValueError("gradient check requires a scalar output")
    out.backward()
    worst = 0.0
    for t in tensors:
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, t, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            raise AssertionError(
                f"gradient mismatch for {t}: max diff "
                f"{np.abs(analytic - numeric).max():.3e}")
        worst = max(worst, float(np.abs(analytic - numeric).max()))
    return worst
