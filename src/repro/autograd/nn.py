"""Neural-network module system built on the autograd engine.

Mirrors the familiar ``torch.nn`` API surface at the scale this
reproduction needs: ``Module`` with recursive parameter discovery,
core layers (Linear, Conv1d, LayerNorm, Dropout), containers and a GRU.
"""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "Parameter", "Module", "Linear", "Conv1d", "LayerNorm", "Dropout",
    "ReLU", "GELU", "Tanh", "Sigmoid", "Sequential", "GRU", "ModuleList",
]


class Parameter(Tensor):
    """A Tensor flagged as a learnable parameter of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter/state discovery."""

    def __init__(self):
        self.training = True

    # -- traversal ------------------------------------------------------
    def parameters(self):
        """Yield every Parameter reachable from this module."""
        seen = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                yield param

    def named_parameters(self, prefix=""):
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=name + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def modules(self):
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- mode and state --------------------------------------------------
    def train(self, mode=True):
        for module in self.modules():
            module.training = mode
        return self

    def eval(self):
        return self.train(False)

    def to(self, dtype):
        """Cast every parameter and registered Tensor buffer to ``dtype``.

        Enables the float32 inference/training path: a model built in
        float64 is converted in place and returns itself.
        """
        dtype = np.dtype(dtype)
        for module in self.modules():
            for value in vars(module).values():
                if isinstance(value, Tensor):
                    value.data = value.data.astype(dtype, copy=False)
                elif isinstance(value, (list, tuple)):
                    for item in value:
                        if isinstance(item, Tensor):
                            item.data = item.data.astype(dtype, copy=False)
        return self

    def zero_grad(self):
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self):
        return sum(p.size for p in self.parameters())

    def state_dict(self):
        """Return a name → ndarray copy of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {value.shape}")
            params[name].data = np.array(value,
                                         dtype=params[name].data.dtype)

    # -- call protocol ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _kaiming_uniform(rng, fan_in, shape):
    bound = math.sqrt(1.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with torch-style (out, in) weights."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_uniform(rng, in_features, (out_features, in_features)))
        self.bias = Parameter(
            _kaiming_uniform(rng, in_features, (out_features,))) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)


class Conv1d(Module):
    """1-D convolution layer (stride 1, optional dilation and padding)."""

    def __init__(self, in_channels, out_channels, kernel_size,
                 dilation=1, padding=0, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        fan_in = in_channels * kernel_size
        self.dilation = dilation
        self.padding = padding
        self.weight = Parameter(
            _kaiming_uniform(rng, fan_in, (out_channels, in_channels, kernel_size)))
        self.bias = Parameter(
            _kaiming_uniform(rng, fan_in, (out_channels,))) if bias else None

    def forward(self, x):
        return F.conv1d(x, self.weight, self.bias,
                        dilation=self.dilation, padding=self.padding)


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape, eps=1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x):
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p=0.1, rng=None):
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x):
        return F.dropout(x, self.p, self.rng, training=self.training)


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class GELU(Module):
    def forward(self, x):
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x):
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i):
        return self.layers[i]

    def __len__(self):
        return len(self.layers)


class ModuleList(Module):
    """A plain container whose items are tracked as sub-modules."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module):
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, i):
        return self.items[i]

    def __len__(self):
        return len(self.items)

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container; call its items directly")


class GRU(Module):
    """Single-layer gated recurrent unit over (batch, time, features) input.

    Returns the full hidden sequence and the final hidden state.  The
    input projections for *all* timesteps are precomputed in one batched
    matmul before the recurrence, so the Python time loop only pays for
    the hidden-to-hidden step; the autograd tape handles backprop through
    time.
    """

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_size = hidden_size
        # Fused gate weights: reset, update, candidate.
        self.w_ih = Parameter(
            _kaiming_uniform(rng, input_size, (3 * hidden_size, input_size)))
        self.w_hh = Parameter(
            _kaiming_uniform(rng, hidden_size, (3 * hidden_size, hidden_size)))
        self.b_ih = Parameter(np.zeros(3 * hidden_size))
        self.b_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x, h0=None):
        batch, steps, _ = x.shape
        hidden = self.hidden_size
        h = h0 if h0 is not None else Tensor(
            np.zeros((batch, hidden), dtype=x.data.dtype))
        # One (batch, time, features) @ (features, 3*hidden) matmul covers
        # every timestep's input projection.
        gates_x = F.linear(x, self.w_ih, self.b_ih)
        outputs = []
        for t in range(steps):
            gx = gates_x[:, t, :]
            gates_h = F.linear(h, self.w_hh, self.b_hh)
            r = (gx[:, :hidden] + gates_h[:, :hidden]).sigmoid()
            z = (gx[:, hidden:2 * hidden]
                 + gates_h[:, hidden:2 * hidden]).sigmoid()
            n = (gx[:, 2 * hidden:]
                 + r * gates_h[:, 2 * hidden:]).tanh()
            h = (1.0 - z) * n + z * h
            outputs.append(h.reshape(batch, 1, hidden))
        return Tensor.concat(outputs, axis=1), h

    def forward_reference(self, x, h0=None):
        """Pre-vectorization recurrence: input projection inside the loop.

        Kept for gradcheck and the E10 kernel benchmark to compare the
        precomputed-projection fast path against.
        """
        batch, steps, _ = x.shape
        hidden = self.hidden_size
        h = h0 if h0 is not None else Tensor(
            np.zeros((batch, hidden), dtype=x.data.dtype))
        outputs = []
        for t in range(steps):
            xt = x[:, t, :]
            gates_x = F.linear(xt, self.w_ih, self.b_ih)
            gates_h = F.linear(h, self.w_hh, self.b_hh)
            r = (gates_x[:, :hidden] + gates_h[:, :hidden]).sigmoid()
            z = (gates_x[:, hidden:2 * hidden]
                 + gates_h[:, hidden:2 * hidden]).sigmoid()
            n = (gates_x[:, 2 * hidden:]
                 + r * gates_h[:, 2 * hidden:]).tanh()
            h = (1.0 - z) * n + z * h
            outputs.append(h.reshape(batch, 1, hidden))
        return Tensor.concat(outputs, axis=1), h
