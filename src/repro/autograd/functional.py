"""Functional neural-network operations on :class:`~repro.autograd.Tensor`.

Everything here composes the primitive ops defined in ``tensor.py`` (or
registers a dedicated backward closure when a fused implementation is
substantially faster).  The convolution and pooling hot paths are
vectorized: ``conv1d`` lowers to an im2col strided view plus a single
batched matmul, and the pools reduce over a ``sliding_window_view``
instead of per-position Python loops.  The original tap-loop kernels are
kept as ``*_reference`` implementations that gradcheck and the E10
benchmark compare against.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, is_grad_enabled

__all__ = [
    "relu", "gelu", "sigmoid", "tanh", "softmax", "log_softmax",
    "dropout", "conv1d", "conv1d_reference", "max_pool1d",
    "max_pool1d_reference", "avg_pool1d", "avg_pool1d_reference",
    "layer_norm", "linear", "one_hot",
]


def relu(x):
    return x.relu()


def sigmoid(x):
    return x.sigmoid()


def tanh(x):
    return x.tanh()


def gelu(x):
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + x * x * x * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x, axis=-1):
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x, p, rng, training=True):
    """Inverted dropout: identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias`` (torch layout: weight is (out, in))."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def _conv_geometry(x, weight, dilation, padding):
    """Shared padding / shape validation for the conv1d kernels."""
    if isinstance(padding, tuple):
        left, right = padding
    else:
        left = right = int(padding)
    if left or right:
        x = x.pad1d(left, right)
    xd, wd = x.data, weight.data
    n, c_in, length = xd.shape
    c_out, c_in_w, k = wd.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, kernel expects {c_in_w}")
    l_out = length - dilation * (k - 1)
    if l_out <= 0:
        raise ValueError("kernel (with dilation) longer than padded input")
    return x, xd, wd, n, c_in, c_out, k, l_out


def _fused(out_data, parents, backward):
    """Wire a fused-kernel output into the graph (no-op under no_grad)."""
    req = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data, requires_grad=req, _prev=parents if req else ())
    if req:
        out._backward = backward
    return out


def conv1d(x, weight, bias=None, dilation=1, padding=0):
    """1-D convolution with stride 1, lowered to im2col + one matmul.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Kernel of shape ``(out_channels, in_channels, kernel_size)``.
    dilation:
        Spacing between kernel taps (for dilated/causal TCN stacks).
    padding:
        ``int`` for symmetric padding, or a ``(left, right)`` pair for
        causal padding.

    The forward builds a strided ``(batch, l_out, in_channels * k)``
    im2col matrix and runs a single GEMM against the flattened kernel;
    the backward reuses the same matrix for the weight gradient and
    scatters ``g @ W`` back per tap for the input gradient.
    """
    x, xd, wd, n, c_in, c_out, k, l_out = _conv_geometry(
        x, weight, dilation, padding)
    span = dilation * (k - 1) + 1
    # windows[b, c, i, t] == xd[b, c, i + t * dilation]
    windows = sliding_window_view(xd, span, axis=2)[..., ::dilation]
    col = np.ascontiguousarray(
        windows.transpose(0, 2, 1, 3)).reshape(n * l_out, c_in * k)
    w2 = wd.reshape(c_out, c_in * k)
    out_data = (col @ w2.T).reshape(n, l_out, c_out).transpose(0, 2, 1)

    def backward(g):
        g = np.ascontiguousarray(
            np.asarray(g).transpose(0, 2, 1)).reshape(n * l_out, c_out)
        if weight.requires_grad:
            weight._accumulate((g.T @ col).reshape(c_out, c_in, k))
        if x.requires_grad:
            gcol = (g @ w2).reshape(n, l_out, c_in, k)
            gx = np.zeros_like(xd)
            for tap in range(k):
                gx[:, :, tap * dilation: tap * dilation + l_out] += \
                    gcol[:, :, :, tap].transpose(0, 2, 1)
            x._accumulate(gx)

    out = _fused(out_data, (x, weight), backward)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out


def conv1d_reference(x, weight, bias=None, dilation=1, padding=0):
    """Reference tap-loop conv1d (the pre-vectorization kernel).

    Kept verbatim so gradcheck and the E10 kernel benchmark can compare
    the im2col fast path against the original implementation.
    """
    x, xd, wd, n, c_in, c_out, k, l_out = _conv_geometry(
        x, weight, dilation, padding)

    out_data = np.zeros((n, c_out, l_out), dtype=xd.dtype)
    for tap in range(k):
        seg = xd[:, :, tap * dilation: tap * dilation + l_out]
        out_data += np.einsum("ncl,oc->nol", seg, wd[:, :, tap])

    def backward(g):
        g = np.asarray(g)
        if weight.requires_grad:
            gw = np.empty_like(wd)
            for tap in range(k):
                seg = xd[:, :, tap * dilation: tap * dilation + l_out]
                gw[:, :, tap] = np.einsum("ncl,nol->oc", seg, g)
            weight._accumulate(gw)
        if x.requires_grad:
            gx = np.zeros_like(xd)
            for tap in range(k):
                gx[:, :, tap * dilation: tap * dilation + l_out] += np.einsum(
                    "nol,oc->ncl", g, wd[:, :, tap])
            x._accumulate(gx)

    out = _fused(out_data, (x, weight), backward)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    return out


def _pool_windows(x, kernel_size, stride):
    """Strided ``(batch, channels, l_out, k)`` view over the last axis."""
    stride = stride or kernel_size
    n, c, length = x.shape
    l_out = (length - kernel_size) // stride + 1
    if l_out <= 0:
        raise ValueError("pooling window longer than input")
    windows = sliding_window_view(x.data, kernel_size, axis=2)[:, :, ::stride]
    return windows, stride, l_out


def _pool_scatter(shape_like, contrib, kernel_size, stride, l_out):
    """Scatter per-window gradient contributions back onto the input axis."""
    gx = np.zeros_like(shape_like)
    for tap in range(kernel_size):
        gx[:, :, tap: tap + (l_out - 1) * stride + 1: stride] += \
            contrib[:, :, :, tap]
    return gx


def max_pool1d(x, kernel_size, stride=None):
    """Max pooling over the last axis of a ``(batch, channels, length)`` input.

    Vectorized over a strided window view; the gradient is split equally
    among tied maxima (matching :meth:`Tensor.max`).
    """
    windows, stride, l_out = _pool_windows(x, kernel_size, stride)
    out_data = windows.max(axis=3)

    def backward(g):
        mask = windows == out_data[..., None]
        contrib = (np.asarray(g)[..., None] * mask) / mask.sum(
            axis=3, keepdims=True)
        x._accumulate(_pool_scatter(x.data, contrib, kernel_size, stride,
                                    l_out))

    return _fused(out_data, (x,), backward)


def max_pool1d_reference(x, kernel_size, stride=None):
    """Reference per-position max pooling (pre-vectorization kernel)."""
    stride = stride or kernel_size
    n, c, length = x.shape
    l_out = (length - kernel_size) // stride + 1
    if l_out <= 0:
        raise ValueError("pooling window longer than input")
    windows = [x[:, :, i * stride: i * stride + kernel_size].max(axis=2, keepdims=True)
               for i in range(l_out)]
    return Tensor.concat(windows, axis=2)


def avg_pool1d(x, kernel_size, stride=None):
    """Average pooling over the last axis of a ``(batch, channels, length)``
    input, vectorized over a strided window view."""
    windows, stride, l_out = _pool_windows(x, kernel_size, stride)
    out_data = windows.sum(axis=3) * (1.0 / kernel_size)

    def backward(g):
        contrib = np.broadcast_to(
            (np.asarray(g) * (1.0 / kernel_size))[..., None],
            (*np.asarray(g).shape, kernel_size))
        x._accumulate(_pool_scatter(x.data, contrib, kernel_size, stride,
                                    l_out))

    return _fused(out_data, (x,), backward)


def avg_pool1d_reference(x, kernel_size, stride=None):
    """Reference per-position average pooling (pre-vectorization kernel)."""
    stride = stride or kernel_size
    n, c, length = x.shape
    l_out = (length - kernel_size) // stride + 1
    if l_out <= 0:
        raise ValueError("pooling window longer than input")
    windows = [x[:, :, i * stride: i * stride + kernel_size].mean(axis=2, keepdims=True)
               for i in range(l_out)]
    return Tensor.concat(windows, axis=2)


def layer_norm(x, weight=None, bias=None, eps=1e-5):
    """Layer normalisation over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centred = x - mean
    var = (centred * centred).mean(axis=-1, keepdims=True)
    normed = centred / (var + eps).sqrt()
    if weight is not None:
        normed = normed * weight
    if bias is not None:
        normed = normed + bias
    return normed


def one_hot(indices, num_classes):
    """Return a float one-hot ndarray (not a graph node)."""
    indices = np.asarray(indices, dtype=int)
    out = np.zeros((*indices.shape, num_classes))
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
