"""The benchmark knowledge base: accumulated results as a queryable DB.

"TFB has accumulated a large number of benchmarking results from
evaluating 30+ methods on 8,000+ time series.  These results are highly
valuable ... Utilizing these results as a knowledge base" — this module is
that store, built on the embedded SQL engine so the Q&A module can query
it and the Automated Ensemble can train on it.
"""

from __future__ import annotations

import numpy as np

from ..characteristics import extract
from ..methods.registry import METHODS, method_info
from ..sql import Database
from .schema import RESULT_METRICS, create_schema

__all__ = ["KnowledgeBase", "LONG_TERM_THRESHOLD"]

#: Horizons at or above this count as "long term forecasting" in Q&A.
LONG_TERM_THRESHOLD = 48


class KnowledgeBase:
    """Facade over the knowledge database.

    Provides typed ingestion (datasets, methods, benchmark results) and the
    extraction views the ensemble trainer needs (error matrices aligned
    with characteristic vectors).
    """

    def __init__(self):
        self.db = create_schema(Database())
        self._dataset_names = set()
        self._method_names = set()

    # -- ingestion -----------------------------------------------------------
    def add_method(self, name):
        """Register one method's metadata (idempotent)."""
        if name in self._method_names:
            return
        info = method_info(name)
        self.db.insert("methods", [(info["name"], info["category"],
                                    info["description"])])
        self._method_names.add(name)

    def add_all_methods(self):
        for name in sorted(METHODS):
            self.add_method(name)

    def add_dataset(self, series, characteristics=None):
        """Ingest a TimeSeries and its characteristic vector (idempotent)."""
        if series.name in self._dataset_names:
            return
        ch = characteristics or extract(series)
        variate = "multivariate" if series.n_channels > 1 else "univariate"
        self.db.insert("datasets", [(
            series.name, series.domain, variate, series.n_channels,
            series.length, ch.period, ch.seasonality, ch.trend,
            ch.transition, ch.shifting, ch.stationarity, ch.correlation)])
        self._dataset_names.add(series.name)

    @staticmethod
    def _result_row(result, term=None):
        """Flatten one EvalResult to a results-table tuple."""
        if term is None:
            term = "long" if result.horizon >= LONG_TERM_THRESHOLD else "short"
        metrics = [result.scores.get(m) for m in RESULT_METRICS]
        metrics = [None if v is not None and not np.isfinite(v) else v
                   for v in metrics]
        return (result.method, result.series, result.horizon,
                result.strategy, term, *metrics, result.n_windows,
                result.fit_seconds, result.predict_seconds)

    def add_result(self, result, term=None):
        """Ingest one EvalResult row."""
        self.db.insert("results", [self._result_row(result, term)])
        if result.method in METHODS:
            self.add_method(result.method)

    def ingest_table(self, table):
        """Bulk-ingest a pipeline ResultTable in one insert.

        Iteration over the table is order-deterministic (sorted by
        series/method), so the stored row order is independent of how a
        parallel run's cells completed.
        """
        records = list(table)
        rows = [self._result_row(result) for result in records]
        if rows:
            self.db.insert("results", rows)
        for name in sorted({r.method for r in records if r.method in METHODS}):
            self.add_method(name)

    # -- introspection ---------------------------------------------------------
    def n_results(self):
        return self.db.query("SELECT COUNT(*) FROM results").scalar()

    def dataset_names(self):
        return sorted(self._dataset_names)

    def method_names(self):
        rows = self.db.query("SELECT DISTINCT method FROM results "
                             "ORDER BY method").rows
        return [r[0] for r in rows]

    def schema_text(self):
        return self.db.schema()

    def query(self, sql):
        return self.db.query(sql)

    # -- training views ----------------------------------------------------------
    def error_matrix(self, metric="mae", horizon=None):
        """Per-series method errors for ensemble training.

        Returns ``(series_names, method_names, matrix)`` where ``matrix``
        is (n_series, n_methods) with NaN for missing cells; series with
        no finite value for some method are kept (the trainer masks them).
        """
        if metric not in RESULT_METRICS:
            raise ValueError(
                f"metric {metric!r} not stored; stored: {RESULT_METRICS}")
        clause = f" WHERE horizon = {int(horizon)}" if horizon else ""
        result = self.db.query(
            f"SELECT dataset, method, {metric} FROM results{clause}")
        methods = self.method_names()
        series = sorted({row[0] for row in result.rows})
        m_index = {m: j for j, m in enumerate(methods)}
        s_index = {s: i for i, s in enumerate(series)}
        matrix = np.full((len(series), len(methods)), np.nan)
        for dataset, method, value in result.rows:
            if value is not None and method in m_index:
                matrix[s_index[dataset], m_index[method]] = value
        return series, methods, matrix

    def characteristics_frame(self, series_names):
        """Characteristic vectors for the given series, same order."""
        axes = ("seasonality", "trend", "transition", "shifting",
                "stationarity", "correlation", "period")
        rows = self.db.query(
            "SELECT name, " + ", ".join(axes) + " FROM datasets").to_dicts()
        by_name = {r["name"]: r for r in rows}
        out = []
        for name in series_names:
            rec = by_name.get(name)
            if rec is None:
                raise KeyError(f"dataset {name!r} not in the knowledge base")
            vec = [rec[a] for a in axes[:-1]]
            vec.append(np.log1p(rec["period"]) / np.log(1 + 512))
            out.append(vec)
        return np.asarray(out, dtype=np.float64)
