"""Builders that populate the knowledge base.

Two paths:

* :func:`build_benchmark_knowledge` runs the real pipeline (methods
  actually fit and forecast) — this is what the Automated Ensemble trains
  on, mirroring the paper's offline phase.
* :func:`build_synthetic_knowledge` fabricates a statistically plausible
  results store at "30+ methods × thousands of series" scale for storage
  and Q&A latency experiments (E6), where running real fits would add
  nothing (documented substitution; the generative model encodes the same
  characteristic→method affinities the real pool shows).
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..characteristics import extract
from ..datasets.registry import DatasetRegistry
from ..evaluation.strategies import EvalResult
from ..methods.registry import METHODS
from ..pipeline import BenchmarkConfig, DatasetSpec, MethodSpec, run_one_click
from .base import KnowledgeBase

__all__ = ["FAST_POOL", "build_benchmark_knowledge",
           "build_synthetic_knowledge", "METHOD_AFFINITY"]

#: Methods cheap enough to evaluate across a full suite in seconds.
FAST_POOL = ("naive", "seasonal_naive", "drift", "mean", "ses", "holt",
             "holt_winters", "theta", "ridge", "lasso", "knn", "linear_nn",
             "mlp", "dlinear", "nlinear", "rlinear", "spectral", "patchmlp")


def build_benchmark_knowledge(per_domain=3, length=384, horizons=(24,),
                              methods=FAST_POOL, seed=7, registry=None,
                              logger=None, metrics=("mae", "mse", "rmse",
                                                    "smape", "mase"),
                              executor=None, cache=None, workers=None):
    """Run the pipeline over a univariate suite and ingest the results.

    Returns ``(knowledge_base, registry)``; the registry is shared so
    downstream code can regenerate exactly the ingested series.
    ``executor``/``cache``/``workers`` pass straight through to
    :func:`~repro.pipeline.run_one_click`, so a knowledge-base (re)build
    can fan out over cores and reuse previously computed cells.
    """
    registry = registry or DatasetRegistry(seed=seed)
    kb = KnowledgeBase()
    kb.add_all_methods()
    with telemetry.span("knowledge.build", per_domain=per_domain,
                        n_methods=len(methods), n_horizons=len(horizons)):
        suite = registry.univariate_suite(per_domain=per_domain,
                                          length=length)
        for series in suite:
            kb.add_dataset(series)
        for horizon in horizons:
            config = BenchmarkConfig(
                methods=tuple(MethodSpec(m) for m in methods),
                datasets=DatasetSpec(suite="univariate",
                                     per_domain=per_domain, length=length),
                strategy="rolling", lookback=96, horizon=horizon,
                metrics=tuple(metrics), seed=seed,
                tag=f"knowledge_h{horizon}").validate()
            table = run_one_click(config, registry=registry, logger=logger,
                                  executor=executor, cache=cache,
                                  workers=workers)
            kb.ingest_table(table)
    return kb, registry


# ---------------------------------------------------------------------------
# Synthetic scale-out store
# ---------------------------------------------------------------------------

#: How strongly each method benefits (negative) or suffers (positive)
#: from each characteristic axis, used by the synthetic generator.
#: Axes: (seasonality, trend, transition, shifting, non-stationarity).
METHOD_AFFINITY = {
    "naive": (0.9, 0.3, 0.1, -0.2, -0.4),
    "seasonal_naive": (-0.9, 0.2, 0.1, 0.1, 0.0),
    "drift": (0.8, -0.5, 0.1, 0.0, -0.2),
    "mean": (0.7, 0.6, 0.0, 0.2, 0.3),
    "ses": (0.8, 0.2, 0.0, -0.1, -0.2),
    "holt": (0.7, -0.6, 0.1, 0.1, 0.0),
    "holt_winters": (-0.8, -0.4, 0.2, 0.2, 0.1),
    "theta": (-0.7, -0.5, 0.1, 0.1, 0.0),
    "arima": (0.2, -0.2, 0.2, 0.2, -0.3),
    "ridge": (-0.5, -0.2, 0.2, 0.3, 0.2),
    "knn": (-0.6, 0.1, 0.3, 0.3, 0.2),
    "gbdt": (-0.4, 0.0, -0.2, 0.2, 0.1),
    "mlp": (-0.5, -0.3, 0.0, 0.2, 0.2),
    "dlinear": (-0.7, -0.6, 0.1, 0.1, 0.1),
    "nlinear": (-0.6, -0.4, 0.1, -0.2, -0.3),
    "rlinear": (-0.6, -0.4, 0.1, -0.3, -0.2),
    "patchmlp": (-0.6, -0.3, 0.0, 0.1, 0.1),
    "spectral": (-0.8, 0.2, 0.2, 0.2, 0.1),
    "tcn": (-0.5, -0.2, -0.1, 0.1, 0.1),
    "gru": (-0.4, -0.3, -0.1, 0.1, 0.1),
    "ets": (0.7, -0.7, 0.1, 0.1, 0.0),
    "stl": (-0.8, -0.5, 0.1, 0.1, 0.0),
    "croston": (0.8, 0.6, 0.2, 0.3, 0.2),
    "transformer": (-0.6, -0.3, 0.0, 0.1, 0.1),
    "nbeats": (-0.6, -0.4, 0.0, 0.1, 0.1),
    "linear_nn": (-0.6, -0.4, 0.1, 0.1, 0.1),
    "auto_arima": (0.2, -0.3, 0.2, 0.2, -0.3),
    "var": (-0.2, -0.1, 0.1, 0.2, 0.1),
    "lasso": (-0.5, -0.2, 0.2, 0.3, 0.2),
    "holt": (0.7, -0.6, 0.1, 0.1, 0.0),
}


def _noiseless_error(method, features, rng):
    """Expected MAE for a method on a series with given features."""
    affinity = METHOD_AFFINITY.get(method)
    if affinity is None:
        # Unknown methods get a stable pseudo-affinity derived from the
        # name, so rankings do not depend on call order or process salt.
        import zlib
        own = np.random.default_rng(zlib.crc32(method.encode("utf-8")))
        affinity = tuple(own.uniform(-0.3, 0.3, size=5))
    seasonality, trend, transition, shifting, stationarity = features
    drivers = np.array([seasonality, trend, transition, shifting,
                        1.0 - stationarity])
    return max(0.8 + float(np.asarray(affinity) @ drivers) * 0.6, 0.05)


def _synthetic_error(method, features, rng):
    """Draw a plausible MAE: the affinity-model expectation plus noise."""
    base = _noiseless_error(method, features, rng)
    return max(float(base * rng.lognormal(0.0, 0.10)), 0.02)


def build_synthetic_knowledge(n_series=2000, methods=None, seed=11,
                              horizons=(24, 96)):
    """Fabricate a knowledge base at TFB scale (for E6).

    Each synthetic series gets a random characteristic vector; each
    method's error is drawn from the affinity model plus noise, so
    rankings correlate with characteristics exactly like the real store.
    """
    rng = np.random.default_rng(seed)
    methods = list(methods or sorted(METHODS))
    kb = KnowledgeBase()
    kb.add_all_methods()
    domains = ("traffic", "electricity", "energy", "environment", "nature",
               "economic", "stock", "banking", "health", "web")
    dataset_rows = []
    result_rows = []
    for i in range(n_series):
        name = f"synth_{i:05d}"
        domain = domains[i % len(domains)]
        features = rng.random(5)
        period = int(rng.choice([0, 7, 12, 24, 52]))
        dataset_rows.append((name, domain, "univariate", 1, 512, period,
                             float(features[0]), float(features[1]),
                             float(features[2]), float(features[3]),
                             float(features[4]), 0.0))
        for horizon in horizons:
            term = "long" if horizon >= 48 else "short"
            for method in methods:
                mae_v = _synthetic_error(method, features, rng)
                mse_v = mae_v ** 2 * float(rng.uniform(1.2, 2.0))
                result_rows.append((method, name, horizon, "rolling", term,
                                    mae_v, mse_v, float(np.sqrt(mse_v)),
                                    mae_v * 35.0, mae_v * 1.1, 10,
                                    float(rng.uniform(0.01, 5.0)),
                                    float(rng.uniform(0.001, 0.5))))
    kb.db.insert("datasets", dataset_rows)
    kb.db.insert("results", result_rows)
    kb._dataset_names.update(row[0] for row in dataset_rows)
    return kb
