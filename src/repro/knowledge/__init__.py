"""Benchmark knowledge: results database, schema, builders."""

from .base import LONG_TERM_THRESHOLD, KnowledgeBase
from .builder import (FAST_POOL, METHOD_AFFINITY, build_benchmark_knowledge,
                      build_synthetic_knowledge)
from .schema import (DATASETS_COLUMNS, METHODS_COLUMNS, RESULT_METRICS,
                     RESULTS_COLUMNS, create_schema)

__all__ = [
    "KnowledgeBase", "LONG_TERM_THRESHOLD", "build_benchmark_knowledge",
    "build_synthetic_knowledge", "FAST_POOL", "METHOD_AFFINITY",
    "create_schema", "DATASETS_COLUMNS", "METHODS_COLUMNS",
    "RESULTS_COLUMNS", "RESULT_METRICS",
]

from .persist import load_knowledge, save_knowledge  # noqa: E402

__all__ += ["save_knowledge", "load_knowledge"]
