"""Persistence for the benchmark knowledge base.

The paper's value proposition rests on *accumulated* benchmark results;
this module lets a knowledge base be saved to a directory of CSV files
(one per table) and reloaded in a later session, so one expensive
benchmark run can seed many EasyTime instances.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .base import KnowledgeBase
from .schema import DATASETS_COLUMNS, METHODS_COLUMNS, RESULTS_COLUMNS

__all__ = ["save_knowledge", "load_knowledge"]

_TABLES = {
    "datasets": DATASETS_COLUMNS,
    "methods": METHODS_COLUMNS,
    "results": RESULTS_COLUMNS,
}
_NULL = ""


def _dump_table(table):
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([c.name for c in table.columns])
    for row in table.rows:
        writer.writerow([_NULL if v is None else v for v in row])
    return buf.getvalue()


def save_knowledge(kb, directory):
    """Write the three knowledge tables as CSV files under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in _TABLES:
        path = directory / f"{name}.csv"
        path.write_text(_dump_table(kb.db.table(name)), encoding="utf-8")
    return directory


def _parse_cell(text, type_name):
    if text == _NULL:
        return None
    if type_name == "INT":
        return int(text)
    if type_name == "FLOAT":
        return float(text)
    if type_name == "BOOL":
        return text in ("True", "true", "1")
    return text


def load_knowledge(directory):
    """Rebuild a KnowledgeBase from :func:`save_knowledge` output."""
    directory = Path(directory)
    kb = KnowledgeBase()
    for name, columns in _TABLES.items():
        path = directory / f"{name}.csv"
        if not path.exists():
            raise FileNotFoundError(f"missing knowledge table file: {path}")
        with path.open(encoding="utf-8", newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            expected = [c for c, _ in columns]
            if header != expected:
                raise ValueError(
                    f"{path.name}: header {header} does not match the "
                    f"schema {expected}")
            types = [t for _, t in columns]
            rows = [tuple(_parse_cell(cell, t)
                          for cell, t in zip(row, types))
                    for row in reader]
        kb.db.insert(name, rows)
    kb._dataset_names.update(
        row[0] for row in kb.db.table("datasets").rows)
    kb._method_names.update(
        row[0] for row in kb.db.table("methods").rows)
    return kb
