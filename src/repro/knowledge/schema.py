"""Relational schema of the benchmark-knowledge database.

Three tables mirror the paper's "benchmark knowledge": meta-information of
datasets and methods, plus the accumulated benchmarking results of the
method × series grid.  The Q&A module's NL2SQL grammar is built against
exactly this schema.
"""

from __future__ import annotations

__all__ = ["DATASETS_COLUMNS", "METHODS_COLUMNS", "RESULTS_COLUMNS",
           "create_schema", "RESULT_METRICS"]

#: Metrics materialised as result columns (one column per metric).
RESULT_METRICS = ("mae", "mse", "rmse", "smape", "mase")

DATASETS_COLUMNS = (
    ("name", "TEXT"),
    ("domain", "TEXT"),
    ("variate", "TEXT"),          # 'univariate' | 'multivariate'
    ("n_channels", "INT"),
    ("length", "INT"),
    ("period", "INT"),
    ("seasonality", "FLOAT"),
    ("trend", "FLOAT"),
    ("transition", "FLOAT"),
    ("shifting", "FLOAT"),
    ("stationarity", "FLOAT"),
    ("correlation", "FLOAT"),
)

METHODS_COLUMNS = (
    ("name", "TEXT"),
    ("category", "TEXT"),
    ("description", "TEXT"),
)

RESULTS_COLUMNS = (
    ("method", "TEXT"),
    ("dataset", "TEXT"),
    ("horizon", "INT"),
    ("strategy", "TEXT"),
    ("term", "TEXT"),             # 'short' | 'long' forecasting regime
    *[(metric, "FLOAT") for metric in RESULT_METRICS],
    ("n_windows", "INT"),
    ("fit_seconds", "FLOAT"),
    ("predict_seconds", "FLOAT"),
)


def create_schema(db):
    """Create the three knowledge tables on a Database."""
    db.create_table("datasets", DATASETS_COLUMNS)
    db.create_table("methods", METHODS_COLUMNS)
    db.create_table("results", RESULTS_COLUMNS)
    return db
