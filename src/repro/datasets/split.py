"""Consistent dataset splitting and window construction.

TFB stresses that inconsistent train/val/test borders, normalisation and
the "drop last" batch behaviour are a major source of misleading TSF
comparisons; this module centralises all of them so every method in the
benchmark sees identical data handling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SplitSpec", "train_val_test_split", "make_windows",
           "batch_indices"]


@dataclass(frozen=True)
class SplitSpec:
    """Fractional split borders (TFB default 7:1:2)."""

    train: float = 0.7
    val: float = 0.1
    test: float = 0.2

    def __post_init__(self):
        total = self.train + self.val + self.test
        if not np.isclose(total, 1.0):
            raise ValueError(f"split fractions must sum to 1, got {total}")
        if min(self.train, self.val, self.test) < 0:
            raise ValueError("split fractions must be non-negative")


def train_val_test_split(values, spec=SplitSpec(), lookback=0):
    """Split ``values`` chronologically into train / val / test segments.

    When ``lookback > 0`` the val and test segments are *extended backwards*
    by ``lookback`` points so that the first forecast window of each segment
    has a full history (standard long-term-forecasting protocol); the extra
    points overlap the previous segment but are never used as targets.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    train_end = int(n * spec.train)
    val_end = train_end + int(n * spec.val)
    train = values[:train_end]
    val = values[max(train_end - lookback, 0):val_end]
    test = values[max(val_end - lookback, 0):]
    return train, val, test


def make_windows(values, lookback, horizon, stride=1, drop_last=False):
    """Build (inputs, targets) sliding windows over a series.

    Parameters
    ----------
    values:
        Array of shape ``(T,)`` or ``(T, C)``.
    lookback / horizon:
        Input and forecast lengths.
    stride:
        Step between consecutive window starts.
    drop_last:
        TFB flags the "drop last" operation as a source of unfair test-set
        truncation; when True the final window is dropped if the remaining
        points after the last full stride are fewer than a full window
        (mimicking batch-wise drop-last), when False every valid window is
        kept.

    Returns
    -------
    (inputs, targets):
        Arrays of shape ``(N, lookback, C)`` and ``(N, horizon, C)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim == 1:
        values = values[:, None]
    if lookback <= 0 or horizon <= 0:
        raise ValueError("lookback and horizon must be positive")
    if stride <= 0:
        raise ValueError("stride must be positive")
    total = lookback + horizon
    n = values.shape[0]
    if n < total:
        raise ValueError(
            f"series of length {n} too short for lookback={lookback} "
            f"horizon={horizon}")
    starts = list(range(0, n - total + 1, stride))
    if drop_last and len(starts) > 1 and starts[-1] + total != n:
        # Emulate a final partial batch being discarded.
        starts = starts[:-1]
    inputs = np.stack([values[s:s + lookback] for s in starts])
    targets = np.stack([values[s + lookback:s + total] for s in starts])
    return inputs, targets


def batch_indices(n, batch_size, rng=None, drop_last=False):
    """Yield minibatch index arrays, optionally shuffled and drop-last."""
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        batch = order[start:start + batch_size]
        if drop_last and batch.size < batch_size:
            return
        yield batch
