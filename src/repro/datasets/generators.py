"""Component-based synthetic time-series generation.

Substitutes TFB's suite of real datasets (see DESIGN.md).  A series is the
sum of independently parameterised components — trend, seasonality, regime
transitions, level shifts, autocorrelated noise — so that each of the six
characteristics the TFB datasets were selected to cover (Seasonality,
Trend, Transition, Shifting, Stationarity, Correlation) can be dialled in
or out explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SeriesSpec", "generate_series", "generate_multivariate",
    "trend_component", "seasonal_component", "level_shift_component",
    "regime_component", "noise_component", "random_walk_component",
]


def trend_component(length, slope=0.0, curvature=0.0, rng=None):
    """Deterministic polynomial trend ``slope*t + curvature*t^2`` (t in [0,1])."""
    t = np.linspace(0.0, 1.0, length)
    return slope * t + curvature * t * t


def seasonal_component(length, period, amplitude=1.0, harmonics=1,
                       phase=0.0, rng=None):
    """Sum of sinusoidal harmonics with geometrically decaying amplitude."""
    if period <= 1:
        return np.zeros(length)
    t = np.arange(length)
    out = np.zeros(length)
    for h in range(1, harmonics + 1):
        out += (amplitude / h) * np.sin(2 * np.pi * h * t / period + phase * h)
    return out


def level_shift_component(length, n_shifts, magnitude, rng):
    """Piecewise-constant level shifts at random change points ("Shifting")."""
    out = np.zeros(length)
    if n_shifts <= 0:
        return out
    points = np.sort(rng.choice(np.arange(length // 10, length - 1),
                                size=min(n_shifts, max(length // 10, 1)),
                                replace=False))
    for p in points:
        out[p:] += rng.normal(0.0, magnitude)
    return out


def regime_component(length, n_regimes, volatility, rng):
    """Regime-switching local dynamics ("Transition").

    Each regime draws its own AR(1) coefficient and innovation scale, so the
    statistical character of the series changes across segments.
    """
    out = np.zeros(length)
    if n_regimes <= 1:
        return out
    borders = np.linspace(0, length, n_regimes + 1).astype(int)
    value = 0.0
    for start, stop in zip(borders[:-1], borders[1:]):
        phi = rng.uniform(-0.6, 0.95)
        scale = volatility * rng.uniform(0.3, 1.5)
        for i in range(start, stop):
            value = phi * value + rng.normal(0.0, scale)
            out[i] = value
    return out


def noise_component(length, scale, ar=0.0, rng=None):
    """Gaussian noise, optionally AR(1)-correlated."""
    rng = rng if rng is not None else np.random.default_rng()
    eps = rng.normal(0.0, scale, size=length)
    if abs(ar) < 1e-12:
        return eps
    out = np.empty(length)
    prev = 0.0
    for i in range(length):
        prev = ar * prev + eps[i]
        out[i] = prev
    return out


def random_walk_component(length, scale, rng):
    """Integrated noise: makes the series non-stationary."""
    return np.cumsum(rng.normal(0.0, scale, size=length))


@dataclass(frozen=True)
class SeriesSpec:
    """Declarative recipe for one synthetic univariate series.

    Every field maps to one of the six TFB characteristics; defaults give a
    mildly seasonal stationary series.
    """

    length: int = 512
    period: int = 24
    season_amp: float = 1.0
    harmonics: int = 2
    trend_slope: float = 0.0
    trend_curvature: float = 0.0
    noise_scale: float = 0.3
    noise_ar: float = 0.0
    n_shifts: int = 0
    shift_magnitude: float = 1.0
    n_regimes: int = 1
    regime_volatility: float = 0.5
    walk_scale: float = 0.0
    level: float = 0.0

    def __post_init__(self):
        if self.length < 8:
            raise ValueError("series length must be at least 8")
        if self.period < 0:
            raise ValueError("period must be non-negative")


def generate_series(spec, rng):
    """Realise a :class:`SeriesSpec` into a 1-D ndarray."""
    parts = [
        np.full(spec.length, spec.level),
        trend_component(spec.length, spec.trend_slope * spec.length / 100.0,
                        spec.trend_curvature * spec.length / 100.0),
        seasonal_component(spec.length, spec.period, spec.season_amp,
                           spec.harmonics,
                           phase=rng.uniform(0, 2 * np.pi)),
        level_shift_component(spec.length, spec.n_shifts,
                              spec.shift_magnitude, rng),
        regime_component(spec.length, spec.n_regimes,
                         spec.regime_volatility, rng),
        noise_component(spec.length, spec.noise_scale, spec.noise_ar, rng),
    ]
    if spec.walk_scale > 0:
        parts.append(random_walk_component(spec.length, spec.walk_scale, rng))
    return np.sum(parts, axis=0)


def generate_multivariate(spec, n_channels, correlation, rng):
    """Generate correlated channels sharing a latent driver ("Correlation").

    Each channel is ``sqrt(rho) * latent + sqrt(1-rho) * idiosyncratic`` with
    channel-specific scale and offset, so the average inter-channel Pearson
    correlation is approximately ``correlation``.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    latent = generate_series(spec, rng)
    latent = (latent - latent.mean()) / (latent.std() + 1e-12)
    channels = []
    for _ in range(n_channels):
        own = generate_series(spec, rng)
        own = (own - own.mean()) / (own.std() + 1e-12)
        mix = np.sqrt(correlation) * latent + np.sqrt(1.0 - correlation) * own
        scale = rng.uniform(0.5, 2.0)
        offset = rng.normal(0.0, 1.0)
        channels.append(mix * scale + offset)
    return np.stack(channels, axis=1)
