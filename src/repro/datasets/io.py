"""CSV persistence for time series (user-uploaded datasets).

The EasyTime frontend lets practitioners upload their own data (Fig. 4,
label 1); this module implements the wide-CSV format that upload path
accepts: a header row of channel names followed by one row per time step.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from .series import TimeSeries

__all__ = ["save_csv", "load_csv", "loads_csv", "dumps_csv"]


def dumps_csv(series):
    """Serialise a TimeSeries to CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(series.columns)
    for row in series.values:
        writer.writerow([format(v, ".10g") for v in row])
    return buf.getvalue()


def save_csv(series, path):
    """Write a TimeSeries to ``path`` in wide CSV format."""
    Path(path).write_text(dumps_csv(series), encoding="utf-8")


def loads_csv(text, name="uploaded", domain="user", freq=0):
    """Parse CSV text into a TimeSeries.

    Rules: the first row is treated as a header when any cell is
    non-numeric; blank lines are skipped; every data row must have the same
    number of columns and parse as floats.
    """
    rows = [r for r in csv.reader(io.StringIO(text)) if r and any(c.strip() for c in r)]
    if not rows:
        raise ValueError("empty CSV input")

    def _is_float(cell):
        cell = cell.strip()
        if not cell:
            return True  # empty cells are missing values, not headers
        try:
            float(cell)
            return True
        except ValueError:
            return False

    header = None
    if not all(_is_float(c) for c in rows[0]):
        header = [c.strip() for c in rows[0]]
        rows = rows[1:]
    if not rows:
        raise ValueError("CSV contains a header but no data rows")
    width = len(rows[0])
    data = np.empty((len(rows), width))
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(f"row {i} has {len(row)} cells, expected {width}")
        try:
            # Empty cells become NaN for the imputation layer to fill.
            data[i] = [float(c) if c.strip() else np.nan for c in row]
        except ValueError as exc:
            raise ValueError(f"non-numeric value in data row {i}: {exc}") from None
    columns = tuple(header) if header else ()
    return TimeSeries(data, name=name, domain=domain, freq=freq, columns=columns)


def load_csv(path, name=None, domain="user", freq=0):
    """Read a TimeSeries from a CSV file."""
    path = Path(path)
    return loads_csv(path.read_text(encoding="utf-8"),
                     name=name or path.stem, domain=domain, freq=freq)
