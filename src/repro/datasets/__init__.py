"""TFB data layer: containers, synthetic domain suites, splits, scalers, IO."""

from .domains import DOMAINS, domain_names, sample_spec
from .generators import (SeriesSpec, generate_multivariate, generate_series,
                         level_shift_component, noise_component,
                         random_walk_component, regime_component,
                         seasonal_component, trend_component)
from .io import dumps_csv, load_csv, loads_csv, save_csv
from .registry import DatasetRegistry
from .scalers import (SCALERS, IdentityScaler, MinMaxScaler, RobustScaler,
                      StandardScaler, make_scaler)
from .series import Dataset, TimeSeries
from .split import SplitSpec, batch_indices, make_windows, train_val_test_split

__all__ = [
    "TimeSeries", "Dataset", "DatasetRegistry", "SeriesSpec",
    "generate_series", "generate_multivariate", "DOMAINS", "domain_names",
    "sample_spec", "SplitSpec", "train_val_test_split", "make_windows",
    "batch_indices", "StandardScaler", "MinMaxScaler", "RobustScaler",
    "IdentityScaler", "make_scaler", "SCALERS", "save_csv", "load_csv",
    "loads_csv", "dumps_csv", "trend_component", "seasonal_component",
    "level_shift_component", "regime_component", "noise_component",
    "random_walk_component",
]

from .impute import (IMPUTERS, forward_fill, has_missing, impute,  # noqa: E402
                     linear_interpolate, missing_fraction,
                     seasonal_interpolate)

__all__ += [
    "impute", "IMPUTERS", "forward_fill", "linear_interpolate",
    "seasonal_interpolate", "has_missing", "missing_fraction",
]
