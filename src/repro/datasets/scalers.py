"""Normalisation transforms, fit on training data only.

TFB calls out the choice of normalisation technique as one of the
consistency pitfalls in TSF evaluation; the pipeline always fits scalers on
the training segment and applies them unchanged to val/test.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler", "RobustScaler", "IdentityScaler",
           "make_scaler", "SCALERS"]


class _Scaler:
    """Base: per-channel affine transform ``(x - shift) / scale``."""

    def __init__(self):
        self.shift = None
        self.scale = None

    def fit(self, values):
        raise NotImplementedError

    def _check_fitted(self):
        if self.shift is None:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    def transform(self, values):
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.shift) / self.scale

    def inverse_transform(self, values):
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.scale + self.shift

    def fit_transform(self, values):
        self.fit(values)
        return self.transform(values)

    @staticmethod
    def _safe(scale):
        scale = np.asarray(scale, dtype=np.float64)
        return np.where(scale > 1e-12, scale, 1.0)


class StandardScaler(_Scaler):
    """Z-score normalisation (TFB default)."""

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64)
        self.shift = values.mean(axis=0)
        self.scale = self._safe(values.std(axis=0))
        return self


class MinMaxScaler(_Scaler):
    """Scale each channel into [0, 1] based on the training range."""

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64)
        lo = values.min(axis=0)
        hi = values.max(axis=0)
        self.shift = lo
        self.scale = self._safe(hi - lo)
        return self


class RobustScaler(_Scaler):
    """Median/IQR scaling, robust to the level shifts in shifting domains."""

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64)
        q25, q50, q75 = np.percentile(values, [25, 50, 75], axis=0)
        self.shift = q50
        self.scale = self._safe(q75 - q25)
        return self


class IdentityScaler(_Scaler):
    """No-op scaler (config value ``"none"``)."""

    def fit(self, values):
        values = np.asarray(values, dtype=np.float64)
        width = values.shape[1] if values.ndim > 1 else ()
        self.shift = np.zeros(width)
        self.scale = np.ones(width)
        return self


SCALERS = {
    "standard": StandardScaler,
    "zscore": StandardScaler,
    "minmax": MinMaxScaler,
    "robust": RobustScaler,
    "none": IdentityScaler,
    "identity": IdentityScaler,
}


def make_scaler(name):
    """Instantiate a scaler by config name."""
    try:
        return SCALERS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown scaler {name!r}; expected one of {sorted(SCALERS)}") from None
