"""Core time-series containers for the TFB data layer.

A :class:`TimeSeries` is a 2-D float array of shape ``(length, channels)``
plus metadata.  Univariate series are stored with ``channels == 1``.  The
container is immutable-by-convention: transformation helpers return new
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["TimeSeries", "Dataset"]


@dataclass(frozen=True)
class TimeSeries:
    """A (length, channels) time series with benchmark metadata.

    Parameters
    ----------
    values:
        Array of shape ``(T,)`` or ``(T, C)``; 1-D input is promoted to a
        single channel.
    name:
        Unique identifier within a dataset collection.
    domain:
        One of the TFB application domains (traffic, electricity, ...).
    freq:
        Dominant seasonal period hint in steps (e.g. 24 for hourly daily
        cycles); 0 when no seasonality is expected.
    columns:
        Channel names; generated as ``ch0..chN`` when omitted.
    """

    values: np.ndarray
    name: str = "series"
    domain: str = "synthetic"
    freq: int = 0
    columns: tuple = field(default=())

    def __post_init__(self):
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise ValueError(f"values must be 1-D or 2-D, got ndim={values.ndim}")
        if values.shape[0] == 0:
            raise ValueError("time series must contain at least one point")
        object.__setattr__(self, "values", values)
        if not self.columns:
            object.__setattr__(
                self, "columns", tuple(f"ch{i}" for i in range(values.shape[1])))
        elif len(self.columns) != values.shape[1]:
            raise ValueError(
                f"{len(self.columns)} column names for {values.shape[1]} channels")

    # -- shape ----------------------------------------------------------
    def __len__(self):
        return self.values.shape[0]

    @property
    def length(self):
        return self.values.shape[0]

    @property
    def n_channels(self):
        return self.values.shape[1]

    @property
    def is_univariate(self):
        return self.values.shape[1] == 1

    # -- views ----------------------------------------------------------
    def univariate(self):
        """Return the single channel as a flat array (univariate only)."""
        if not self.is_univariate:
            raise ValueError(f"{self.name} has {self.n_channels} channels")
        return self.values[:, 0]

    def channel(self, index):
        """Return one channel as a new univariate TimeSeries."""
        return TimeSeries(self.values[:, index],
                          name=f"{self.name}/{self.columns[index]}",
                          domain=self.domain, freq=self.freq)

    def iter_channels(self):
        for i in range(self.n_channels):
            yield self.channel(i)

    def slice(self, start, stop):
        """Return the sub-series ``values[start:stop]``."""
        return replace(self, values=self.values[start:stop])

    def with_values(self, values):
        """Return a copy carrying new values but the same metadata."""
        return replace(self, values=np.asarray(values, dtype=np.float64))

    def __repr__(self):
        return (f"TimeSeries(name={self.name!r}, domain={self.domain!r}, "
                f"shape=({self.length}, {self.n_channels}), freq={self.freq})")


@dataclass(frozen=True)
class Dataset:
    """A named collection of time series from one (synthetic) source.

    TFB distinguishes multivariate datasets (one series, many channels)
    from univariate collections (many single-channel series); both map to
    this container.
    """

    name: str
    series: tuple
    domain: str = "synthetic"
    tags: tuple = field(default=())

    def __post_init__(self):
        if not self.series:
            raise ValueError("dataset must contain at least one series")
        object.__setattr__(self, "series", tuple(self.series))

    def __len__(self):
        return len(self.series)

    def __iter__(self):
        return iter(self.series)

    def __getitem__(self, i):
        return self.series[i]

    @property
    def is_multivariate(self):
        return len(self.series) == 1 and self.series[0].n_channels > 1

    def get(self, name):
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series named {name!r} in dataset {self.name!r}")
