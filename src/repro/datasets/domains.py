"""Domain presets mirroring the 10 TFB application domains.

TFB's datasets come from traffic, electricity, energy, environment, nature,
economic, stock, banking, health and web sources.  Each preset below is a
distribution over :class:`~repro.datasets.generators.SeriesSpec` parameters
that reproduces the characteristic mix typical of that domain (e.g. traffic
is strongly daily-seasonal; stock is a near-random-walk; web traffic shows
level shifts).
"""

from __future__ import annotations

import numpy as np

from .generators import SeriesSpec

__all__ = ["DOMAINS", "sample_spec", "domain_names"]


def _traffic(rng, length):
    return SeriesSpec(length=length, period=24,
                      season_amp=rng.uniform(2.0, 4.0), harmonics=3,
                      trend_slope=rng.uniform(-0.05, 0.05),
                      noise_scale=rng.uniform(0.2, 0.5),
                      noise_ar=rng.uniform(0.1, 0.4))


def _electricity(rng, length):
    return SeriesSpec(length=length, period=24,
                      season_amp=rng.uniform(1.5, 3.0), harmonics=2,
                      trend_slope=rng.uniform(0.0, 0.15),
                      noise_scale=rng.uniform(0.3, 0.6),
                      noise_ar=rng.uniform(0.2, 0.5))


def _energy(rng, length):
    return SeriesSpec(length=length, period=rng.choice([12, 24]),
                      season_amp=rng.uniform(1.0, 2.5), harmonics=2,
                      trend_slope=rng.uniform(0.05, 0.3),
                      trend_curvature=rng.uniform(-0.05, 0.1),
                      noise_scale=rng.uniform(0.3, 0.7))


def _environment(rng, length):
    return SeriesSpec(length=length, period=rng.choice([24, 52]),
                      season_amp=rng.uniform(0.8, 2.0), harmonics=1,
                      noise_scale=rng.uniform(0.4, 0.9),
                      noise_ar=rng.uniform(0.3, 0.6),
                      n_regimes=int(rng.integers(1, 3)),
                      regime_volatility=rng.uniform(0.2, 0.5))


def _nature(rng, length):
    return SeriesSpec(length=length, period=rng.choice([0, 52]),
                      season_amp=rng.uniform(0.5, 1.5),
                      noise_scale=rng.uniform(0.5, 1.0),
                      noise_ar=rng.uniform(0.4, 0.8),
                      n_regimes=int(rng.integers(2, 4)),
                      regime_volatility=rng.uniform(0.3, 0.8))


def _economic(rng, length):
    return SeriesSpec(length=length, period=rng.choice([0, 12]),
                      season_amp=rng.uniform(0.2, 0.8),
                      trend_slope=rng.uniform(0.1, 0.5),
                      trend_curvature=rng.uniform(0.0, 0.15),
                      noise_scale=rng.uniform(0.2, 0.5),
                      walk_scale=rng.uniform(0.0, 0.05))


def _stock(rng, length):
    return SeriesSpec(length=length, period=0, season_amp=0.0,
                      trend_slope=rng.uniform(-0.2, 0.3),
                      noise_scale=rng.uniform(0.1, 0.3),
                      walk_scale=rng.uniform(0.15, 0.4),
                      n_shifts=int(rng.integers(0, 2)),
                      shift_magnitude=rng.uniform(0.5, 2.0))


def _banking(rng, length):
    return SeriesSpec(length=length, period=rng.choice([7, 12]),
                      season_amp=rng.uniform(0.5, 1.5),
                      trend_slope=rng.uniform(0.0, 0.3),
                      noise_scale=rng.uniform(0.2, 0.6),
                      n_shifts=int(rng.integers(0, 3)),
                      shift_magnitude=rng.uniform(0.5, 1.5))


def _health(rng, length):
    return SeriesSpec(length=length, period=rng.choice([7, 24]),
                      season_amp=rng.uniform(0.8, 2.0), harmonics=2,
                      noise_scale=rng.uniform(0.3, 0.8),
                      n_regimes=int(rng.integers(1, 3)),
                      regime_volatility=rng.uniform(0.2, 0.6))


def _web(rng, length):
    return SeriesSpec(length=length, period=7,
                      season_amp=rng.uniform(1.0, 2.5), harmonics=2,
                      trend_slope=rng.uniform(-0.1, 0.4),
                      noise_scale=rng.uniform(0.4, 1.0),
                      n_shifts=int(rng.integers(1, 4)),
                      shift_magnitude=rng.uniform(1.0, 3.0))


DOMAINS = {
    "traffic": _traffic,
    "electricity": _electricity,
    "energy": _energy,
    "environment": _environment,
    "nature": _nature,
    "economic": _economic,
    "stock": _stock,
    "banking": _banking,
    "health": _health,
    "web": _web,
}


def domain_names():
    """The 10 TFB domains in a stable order."""
    return list(DOMAINS)


def sample_spec(domain, rng, length=512):
    """Draw a SeriesSpec from the given domain's parameter distribution."""
    try:
        factory = DOMAINS[domain]
    except KeyError:
        raise KeyError(
            f"unknown domain {domain!r}; expected one of {sorted(DOMAINS)}") from None
    return factory(rng, length)
