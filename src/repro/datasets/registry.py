"""Seeded dataset registry: the benchmark's data layer entry point.

Builds reproducible collections analogous to TFB's 25 multivariate datasets
and 8,068 univariate series, scaled to laptop size but spanning the same
10 domains and the same characteristic axes.
"""

from __future__ import annotations

import zlib

import numpy as np

from .domains import DOMAINS, domain_names, sample_spec
from .generators import generate_multivariate, generate_series
from .series import Dataset, TimeSeries

__all__ = ["DatasetRegistry"]


class DatasetRegistry:
    """Factory + cache for benchmark datasets.

    All randomness flows from the constructor seed, so two registries with
    the same seed produce bit-identical collections — the consistency
    property TFB's pipeline relies on.
    """

    def __init__(self, seed=7):
        self.seed = seed
        self._cache = {}
        # Memoised individual series, keyed by the full generation recipe
        # (kind, domain, index, length, ...).  The registry seed is part
        # of every rng draw, so the key needs no seed component; repeated
        # grids and background jobs get the identical TimeSeries *object*
        # back instead of regenerating it.
        self._series_cache = {}

    # ------------------------------------------------------------------
    def _rng(self, key):
        # Python's hash() is salted per process (PYTHONHASHSEED), so a
        # stable digest is required for cross-process reproducibility.
        digest = zlib.crc32(repr(key).encode("utf-8"))
        return np.random.default_rng((self.seed, digest))

    def invalidate(self):
        """Drop every memoised suite and series (for tests)."""
        self._cache.clear()
        self._series_cache.clear()

    def univariate_series(self, domain, index, length=512):
        """One seeded univariate series from a domain (memoised)."""
        key = ("uni", domain, index, length)
        if key not in self._series_cache:
            rng = self._rng(key)
            spec = sample_spec(domain, rng, length=length)
            values = generate_series(spec, rng)
            self._series_cache[key] = TimeSeries(
                values, name=f"{domain}_u{index:04d}", domain=domain,
                freq=spec.period)
        return self._series_cache[key]

    def multivariate_series(self, domain, index, length=512, n_channels=7,
                            correlation=None):
        """One seeded multivariate series from a domain (memoised)."""
        key = ("multi", domain, index, length, n_channels, correlation)
        if key not in self._series_cache:
            rng = self._rng(("multi", domain, index, length, n_channels))
            drawn = correlation
            if drawn is None:
                drawn = float(rng.uniform(0.2, 0.9))
            spec = sample_spec(domain, rng, length=length)
            values = generate_multivariate(spec, n_channels, drawn, rng)
            self._series_cache[key] = TimeSeries(
                values, name=f"{domain}_m{index:02d}", domain=domain,
                freq=spec.period)
        return self._series_cache[key]

    # ------------------------------------------------------------------
    def univariate_suite(self, per_domain=8, length=512, domains=None):
        """A collection of univariate datasets across domains.

        TFB ships 8,068 univariate series; this builds ``per_domain × 10``
        series with the same domain mix (scale with ``per_domain``).
        """
        key = ("uni_suite", per_domain, length, tuple(domains or ()))
        if key not in self._cache:
            selected = list(domains) if domains else domain_names()
            series = [self.univariate_series(d, i, length=length)
                      for d in selected for i in range(per_domain)]
            self._cache[key] = Dataset(
                name=f"univariate_suite_{per_domain}x{len(selected)}",
                series=series, domain="mixed", tags=("univariate",))
        return self._cache[key]

    def multivariate_suite(self, count=10, length=512, n_channels=7):
        """A collection of multivariate datasets (TFB has 25; scaled)."""
        key = ("multi_suite", count, length, n_channels)
        if key not in self._cache:
            names = domain_names()
            series = [self.multivariate_series(names[i % len(names)], i,
                                               length=length,
                                               n_channels=n_channels)
                      for i in range(count)]
            self._cache[key] = Dataset(name=f"multivariate_suite_{count}",
                                       series=series, domain="mixed",
                                       tags=("multivariate",))
        return self._cache[key]

    def get(self, name, length=512):
        """Resolve a ``domain_uNNNN`` / ``domain_mNN`` name to its series."""
        domain, _, tail = name.rpartition("_")
        if domain in DOMAINS and len(tail) > 1:
            kind, digits = tail[0], tail[1:]
            if digits.isdigit():
                index = int(digits)
                if kind == "u":
                    return self.univariate_series(domain, index, length=length)
                if kind == "m":
                    return self.multivariate_series(domain, index, length=length)
        raise KeyError(f"cannot resolve dataset name {name!r}")
