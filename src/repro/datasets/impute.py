"""Missing-value handling for user-uploaded series.

Practitioner CSVs routinely contain gaps; the pipeline's methods assume
dense input.  This module provides the standard imputers (forward-fill,
linear interpolation, seasonal interpolation) plus gap detection, applied
per channel on ``NaN`` markers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["has_missing", "missing_fraction", "forward_fill",
           "linear_interpolate", "seasonal_interpolate", "impute",
           "IMPUTERS"]


def has_missing(values):
    return bool(np.isnan(np.asarray(values, dtype=np.float64)).any())


def missing_fraction(values):
    values = np.asarray(values, dtype=np.float64)
    return float(np.isnan(values).mean())


def _per_channel(values, fn, **kwargs):
    values = np.asarray(values, dtype=np.float64)
    squeeze = values.ndim == 1
    if squeeze:
        values = values[:, None]
    out = np.column_stack([fn(values[:, c].copy(), **kwargs)
                           for c in range(values.shape[1])])
    return out[:, 0] if squeeze else out


def _forward_fill_1d(col):
    mask = np.isnan(col)
    if mask.all():
        raise ValueError("cannot impute an all-missing channel")
    # Back-fill a leading gap from the first observed value.
    first = np.flatnonzero(~mask)[0]
    col[:first] = col[first]
    idx = np.where(np.isnan(col), 0, np.arange(len(col)))
    np.maximum.accumulate(idx, out=idx)
    return col[idx]


def forward_fill(values):
    """Repeat the last observed value through each gap."""
    return _per_channel(values, _forward_fill_1d)


def _linear_1d(col):
    mask = np.isnan(col)
    if mask.all():
        raise ValueError("cannot impute an all-missing channel")
    observed = np.flatnonzero(~mask)
    return np.interp(np.arange(len(col)), observed, col[observed])


def linear_interpolate(values):
    """Straight-line interpolation across gaps (flat extrapolation)."""
    return _per_channel(values, _linear_1d)


def _seasonal_1d(col, period):
    mask = np.isnan(col)
    if mask.all():
        raise ValueError("cannot impute an all-missing channel")
    if period < 2:
        return _linear_1d(col)
    out = col.copy()
    for phase in range(period):
        slot = out[phase::period]
        slot_mask = np.isnan(slot)
        if slot_mask.all():
            continue
        phase_mean = np.nanmean(slot)
        slot[slot_mask] = phase_mean
        out[phase::period] = slot
    # Any phase that was entirely missing falls back to linear.
    if np.isnan(out).any():
        out = _linear_1d(out)
    return out


def seasonal_interpolate(values, period):
    """Fill each gap with the mean of its seasonal phase."""
    return _per_channel(values, _seasonal_1d, period=period)


IMPUTERS = {
    "ffill": forward_fill,
    "linear": linear_interpolate,
    "seasonal": seasonal_interpolate,
}


def impute(values, method="linear", period=0):
    """Impute by name; ``seasonal`` requires a period."""
    try:
        fn = IMPUTERS[method]
    except KeyError:
        raise KeyError(
            f"unknown imputer {method!r}; known: {sorted(IMPUTERS)}"
        ) from None
    if method == "seasonal":
        return fn(values, period=period)
    return fn(values)
