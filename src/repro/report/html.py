"""Standalone HTML benchmark reports.

The reporting layer's offline counterpart to the web frontend's results
panel: turn a :class:`~repro.pipeline.runner.ResultTable` into a single
self-contained HTML document with the leaderboard, the per-series score
matrix, and embedded SVG charts.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from .charts import bar_chart

__all__ = ["html_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2 { color: #30475e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f0f4f8; }
td:first-child, th:first-child { text-align: left; }
.best { background: #e3f4e1; font-weight: bold; }
"""


def _html_table(headers, rows, highlight=None):
    parts = ["<table><tr>"]
    parts += [f"<th>{escape(str(h))}</th>" for h in headers]
    parts.append("</tr>")
    for i, row in enumerate(rows):
        parts.append("<tr>")
        for j, cell in enumerate(row):
            text = f"{cell:.4f}" if isinstance(cell, float) else \
                escape(str(cell))
            css = ' class="best"' if highlight and (i, j) in highlight \
                else ""
            parts.append(f"<td{css}>{text}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def html_report(table, metric="mae", title="Benchmark report"):
    """Render a ResultTable to a standalone HTML string."""
    means = table.mean_scores(metric)
    if not means:
        raise ValueError(f"no finite {metric!r} scores to report")
    ranking = table.ranking(metric)
    pivot = table.pivot(metric)
    methods = table.methods()

    sections = [f"<html><head><meta charset='utf-8'>"
                f"<title>{escape(title)}</title>"
                f"<style>{_STYLE}</style></head><body>"]
    sections.append(f"<h1>{escape(title)}</h1>")
    sections.append(
        f"<p>{len(table)} results &middot; {len(methods)} methods &middot; "
        f"{len(table.series_names())} series &middot; metric: "
        f"{escape(metric)}</p>")

    sections.append("<h2>Leaderboard</h2>")
    sections.append(_html_table(
        ["rank", "method", f"mean {metric}"],
        [[i + 1, m, means[m]] for i, m in enumerate(ranking)],
        highlight={(0, 1), (0, 2)}))
    sections.append(bar_chart(ranking, [means[m] for m in ranking],
                              title=f"mean {metric} per method"))

    sections.append("<h2>Per-series scores</h2>")
    rows = []
    highlight = set()
    best = table.best_per_series(metric)
    for i, series in enumerate(sorted(pivot)):
        row = [series]
        for j, method in enumerate(methods):
            value = pivot[series].get(method)
            row.append("-" if value is None else value)
            if best.get(series) == method:
                highlight.add((i, j + 1))
        rows.append(row)
    sections.append(_html_table(["series"] + list(methods), rows,
                                highlight=highlight))

    winners = {}
    for method in best.values():
        winners[method] = winners.get(method, 0) + 1
    sections.append("<h2>Wins per method</h2>")
    sections.append(_html_table(["method", "series won"],
                                sorted(winners.items(),
                                       key=lambda kv: -kv[1])))
    sections.append("</body></html>")
    return "".join(sections)
