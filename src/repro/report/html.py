"""Standalone HTML benchmark reports.

The reporting layer's offline counterpart to the web frontend's results
panel: turn a :class:`~repro.pipeline.runner.ResultTable` into a single
self-contained HTML document with the leaderboard, the per-series score
matrix, and embedded SVG charts.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from .charts import bar_chart

__all__ = ["html_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2 { color: #30475e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f0f4f8; }
td:first-child, th:first-child { text-align: left; }
.best { background: #e3f4e1; font-weight: bold; }
.failures td { text-align: left; background: #fdf2f2; }
.failures th { background: #f8e3e3; }
"""


def _html_table(headers, rows, highlight=None):
    parts = ["<table><tr>"]
    parts += [f"<th>{escape(str(h))}</th>" for h in headers]
    parts.append("</tr>")
    for i, row in enumerate(rows):
        parts.append("<tr>")
        for j, cell in enumerate(row):
            text = f"{cell:.4f}" if isinstance(cell, float) else \
                escape(str(cell))
            css = ' class="best"' if highlight and (i, j) in highlight \
                else ""
            parts.append(f"<td{css}>{text}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _failure_panel(table):
    """The graceful-degradation section: why rows are missing."""
    failures = getattr(table, "failures", None)
    if not failures:
        return []
    counts = table.status_counts()
    summary = " &middot; ".join(f"{escape(str(status))}: {count}"
                                for status, count in sorted(counts.items()))
    rows = [[f.method, f.series, f.status, f.error_type or "-",
             f.error or "-"]
            for f in table.sorted_failures()]
    return ["<h2>Failures</h2>",
            f"<p>{summary}</p>",
            "<div class='failures'>",
            _html_table(["method", "series", "status", "type", "error"],
                        rows),
            "</div>"]


def html_report(table, metric="mae", title="Benchmark report"):
    """Render a ResultTable to a standalone HTML string.

    A table holding only failures (every cell failed, was quarantined or
    was cut off by a deadline) still renders: the score sections are
    skipped and the failure panel explains what went wrong — graceful
    degradation instead of a crash at report time.
    """
    means = table.mean_scores(metric)
    failures = getattr(table, "failures", None) or []
    if not means and not failures:
        raise ValueError(f"no finite {metric!r} scores to report")
    methods = table.methods()

    sections = [f"<html><head><meta charset='utf-8'>"
                f"<title>{escape(title)}</title>"
                f"<style>{_STYLE}</style></head><body>"]
    sections.append(f"<h1>{escape(title)}</h1>")
    summary = (f"<p>{len(table)} results &middot; {len(methods)} methods "
               f"&middot; {len(table.series_names())} series &middot; "
               f"metric: {escape(metric)}")
    if failures:
        summary += f" &middot; {len(failures)} failed cells"
    sections.append(summary + "</p>")

    if means:
        ranking = table.ranking(metric)
        pivot = table.pivot(metric)
        sections.append("<h2>Leaderboard</h2>")
        sections.append(_html_table(
            ["rank", "method", f"mean {metric}"],
            [[i + 1, m, means[m]] for i, m in enumerate(ranking)],
            highlight={(0, 1), (0, 2)}))
        sections.append(bar_chart(ranking, [means[m] for m in ranking],
                                  title=f"mean {metric} per method"))

        sections.append("<h2>Per-series scores</h2>")
        rows = []
        highlight = set()
        best = table.best_per_series(metric)
        for i, series in enumerate(sorted(pivot)):
            row = [series]
            for j, method in enumerate(methods):
                value = pivot[series].get(method)
                row.append("-" if value is None else value)
                if best.get(series) == method:
                    highlight.add((i, j + 1))
            rows.append(row)
        sections.append(_html_table(["series"] + list(methods), rows,
                                    highlight=highlight))

        winners = {}
        for method in best.values():
            winners[method] = winners.get(method, 0) + 1
        sections.append("<h2>Wins per method</h2>")
        sections.append(_html_table(["method", "series won"],
                                    sorted(winners.items(),
                                           key=lambda kv: -kv[1])))

    sections.extend(_failure_panel(table))
    sections.append("</body></html>")
    return "".join(sections)
