"""Dependency-free SVG chart rendering (the reporting layer's visuals).

EasyTime's frontend renders "bar charts, line charts, pie charts, etc."
for forecasts and Q&A answers.  This module produces self-contained SVG
documents from the same chart-spec dicts the Q&A module emits, so every
chart the system would display is renderable and testable offline.

A chart spec is a dict::

    {"type": "line"|"bar"|"pie",
     "title": str,
     "series": [{"name": str, "values": [..]} , ...],   # line
     "labels": [...], "values": [...]}                   # bar / pie
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

import numpy as np

__all__ = ["render_chart", "line_chart", "bar_chart", "pie_chart"]

_PALETTE = ("#4C78A8", "#F58518", "#54A24B", "#E45756", "#72B7B2",
            "#B279A2", "#FF9DA6", "#9D755D")
_WIDTH, _HEIGHT = 640, 360
_MARGIN = 48


def _header(title):
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-family="sans-serif" font-size="16">{escape(title)}</text>')
    return parts


def _axis_scale(lo, hi):
    if math.isclose(lo, hi):
        pad = abs(lo) * 0.1 + 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.05
    return lo - pad, hi + pad


def line_chart(series, title=""):
    """Render named value sequences as polylines with a legend."""
    if not series:
        raise ValueError("line chart needs at least one series")
    parts = _header(title)
    all_vals = np.concatenate([np.asarray(s["values"], dtype=float)
                               for s in series if len(s["values"])])
    if all_vals.size == 0:
        raise ValueError("line chart series are all empty")
    lo, hi = _axis_scale(float(all_vals.min()), float(all_vals.max()))
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    max_len = max(len(s["values"]) for s in series)

    def sx(i):
        return _MARGIN + plot_w * (i / max(max_len - 1, 1))

    def sy(v):
        return _HEIGHT - _MARGIN - plot_h * ((v - lo) / (hi - lo))

    # Axes.
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_HEIGHT - _MARGIN}" x2="{_WIDTH - _MARGIN}" '
        f'y2="{_HEIGHT - _MARGIN}" stroke="#888"/>')
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_MARGIN}" x2="{_MARGIN}" '
        f'y2="{_HEIGHT - _MARGIN}" stroke="#888"/>')
    for frac in (0.0, 0.5, 1.0):
        value = lo + frac * (hi - lo)
        parts.append(
            f'<text x="{_MARGIN - 6}" y="{sy(value) + 4}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{value:.3g}</text>')
    for k, entry in enumerate(series):
        values = np.asarray(entry["values"], dtype=float)
        colour = _PALETTE[k % len(_PALETTE)]
        points = " ".join(f"{sx(i):.1f},{sy(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f'<polyline fill="none" stroke="{colour}" '
                     f'stroke-width="1.5" points="{points}"/>')
        parts.append(
            f'<text x="{_WIDTH - _MARGIN + 4}" y="{_MARGIN + 14 * k + 10}" '
            f'font-family="sans-serif" font-size="10" fill="{colour}">'
            f'{escape(str(entry.get("name", f"s{k}")))}</text>')
    parts.append("</svg>")
    return "".join(parts)


def bar_chart(labels, values, title=""):
    """Render labelled values as vertical bars."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        raise ValueError("bar chart needs at least one value")
    parts = _header(title)
    values = np.asarray(values, dtype=float)
    lo = min(0.0, float(values.min()))
    hi = max(0.0, float(values.max()))
    lo, hi = _axis_scale(lo, hi)
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    n = len(values)
    slot = plot_w / n
    bar_w = slot * 0.7

    def sy(v):
        return _HEIGHT - _MARGIN - plot_h * ((v - lo) / (hi - lo))

    baseline = sy(0.0)
    for i, (label, value) in enumerate(zip(labels, values)):
        x = _MARGIN + i * slot + (slot - bar_w) / 2
        top = min(sy(value), baseline)
        height = abs(sy(value) - baseline)
        colour = _PALETTE[i % len(_PALETTE)]
        parts.append(f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
                     f'height="{height:.1f}" fill="{colour}"/>')
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{_HEIGHT - _MARGIN + 14}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="9">'
            f'{escape(str(label)[:12])}</text>')
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{top - 4:.1f}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="9">'
            f'{value:.3g}</text>')
    parts.append("</svg>")
    return "".join(parts)


def pie_chart(labels, values, title=""):
    """Render positive values as pie slices with a legend."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    values = np.asarray(values, dtype=float)
    if (values < 0).any():
        raise ValueError("pie chart values must be non-negative")
    total = float(values.sum())
    if total <= 0:
        raise ValueError("pie chart needs a positive total")
    parts = _header(title)
    cx, cy = _WIDTH * 0.4, _HEIGHT / 2 + 10
    radius = min(_WIDTH, _HEIGHT) / 2 - _MARGIN
    angle = -math.pi / 2
    for i, (label, value) in enumerate(zip(labels, values)):
        frac = value / total
        sweep = 2 * math.pi * frac
        x0 = cx + radius * math.cos(angle)
        y0 = cy + radius * math.sin(angle)
        angle2 = angle + sweep
        x1 = cx + radius * math.cos(angle2)
        y1 = cy + radius * math.sin(angle2)
        large = 1 if sweep > math.pi else 0
        colour = _PALETTE[i % len(_PALETTE)]
        if frac >= 0.999:
            parts.append(f'<circle cx="{cx}" cy="{cy}" r="{radius}" '
                         f'fill="{colour}"/>')
        else:
            parts.append(
                f'<path d="M{cx:.1f},{cy:.1f} L{x0:.1f},{y0:.1f} '
                f'A{radius:.1f},{radius:.1f} 0 {large} 1 {x1:.1f},{y1:.1f} Z" '
                f'fill="{colour}"/>')
        parts.append(
            f'<text x="{_WIDTH * 0.72}" y="{_MARGIN + 16 * i + 10}" '
            f'font-family="sans-serif" font-size="10" fill="{colour}">'
            f'{escape(str(label)[:20])} ({100 * frac:.1f}%)</text>')
        angle = angle2
    parts.append("</svg>")
    return "".join(parts)


def render_chart(spec):
    """Render a chart-spec dict to an SVG string."""
    kind = spec.get("type")
    title = spec.get("title", "")
    if kind == "line":
        return line_chart(spec["series"], title=title)
    if kind == "bar":
        return bar_chart(spec["labels"], spec["values"], title=title)
    if kind == "pie":
        return pie_chart(spec["labels"], spec["values"], title=title)
    raise ValueError(f"unknown chart type {kind!r}")
