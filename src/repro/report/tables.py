"""Plain-text reporting: result tables and sparklines.

The console counterpart of the web frontend's result panels: formats a
:class:`~repro.pipeline.runner.ResultTable` pivot as an aligned text grid
and renders series as unicode sparklines for quick inspection in logs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_pivot", "sparkline", "format_ranking",
           "format_profile", "format_failures"]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, width=None):
    """Render values as a unicode sparkline, optionally resampled."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if width is not None and values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    if np.isclose(lo, hi):
        return _SPARK[3] * values.size
    levels = ((values - lo) / (hi - lo) * (len(_SPARK) - 1)).round().astype(int)
    return "".join(_SPARK[k] for k in levels)


def format_table(headers, rows, float_fmt="{:.4f}"):
    """Align headers and rows into a fixed-width text table."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    rendered = [[fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_pivot(pivot, metric="", methods=None):
    """Format ``{series: {method: score}}`` as a text matrix."""
    if not pivot:
        return "(empty)"
    if methods is None:
        methods = sorted({m for row in pivot.values() for m in row})
    headers = [f"series\\{metric}" if metric else "series"] + list(methods)
    rows = []
    for series in sorted(pivot):
        row = [series]
        for method in methods:
            value = pivot[series].get(method)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows)


def format_profile(summary):
    """Format a :meth:`RunLogger.profile_summary` breakdown as a table.

    One row per pipeline phase with its total wall-clock and share, plus a
    totals row across all profiled tasks.  Summaries carrying
    ``phase_quantiles`` (span-derived profiles) get a p50/p95/p99 column
    so tail latency shows up next to the totals.
    """
    phases = summary.get("phases", {})
    if not phases:
        return "(no profile events)"
    quantiles = summary.get("phase_quantiles") or {}
    total = sum(phases.values())
    rows = []
    for phase, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / total if total > 0 else 0.0
        row = [phase, seconds, f"{share:.1f}%"]
        if quantiles:
            q = quantiles.get(phase, {})
            row.append("/".join(f"{q.get(k, 0.0):.3f}"
                                for k in ("p50", "p95", "p99"))
                       if q else "-")
        rows.append(row)
    totals_row = ["total", total, f"({summary.get('tasks', 0)} tasks)"]
    headers = ["phase", "seconds", "share"]
    if quantiles:
        totals_row.append("-")
        headers.append("p50/p95/p99")
    rows.append(totals_row)
    return format_table(headers, rows)


def format_failures(failures, max_error_chars=60):
    """Format cell failures as a text panel (graceful-degradation view).

    Accepts either a :class:`~repro.pipeline.ResultTable` (its
    ``failures`` are used), a list of
    :class:`~repro.pipeline.CellFailure` records, or plain dict rows.
    Returns ``""`` when there is nothing to report, so callers can print
    unconditionally.
    """
    if hasattr(failures, "sorted_failures"):
        failures = failures.sorted_failures()
    rows = []
    for failure in failures:
        row = failure if isinstance(failure, dict) else failure.to_row()
        error = str(row.get("error", ""))
        if len(error) > max_error_chars:
            error = error[:max_error_chars - 1] + "…"
        rows.append([row.get("method", "-"), row.get("series", "-"),
                     row.get("status", "-"), row.get("error_type", "") or "-",
                     error or "-"])
    if not rows:
        return ""
    return format_table(["method", "series", "status", "type", "error"],
                        rows)


def format_ranking(mean_scores, metric, top=None, higher_is_better=False):
    """Format mean scores as a ranked leaderboard."""
    order = sorted(mean_scores, key=mean_scores.get,
                   reverse=higher_is_better)
    if top:
        order = order[:top]
    rows = [[i + 1, name, mean_scores[name]]
            for i, name in enumerate(order)]
    return format_table(["rank", "method", f"mean {metric}"], rows)
