"""Reporting layer: SVG charts, text tables, sparklines."""

from .charts import bar_chart, line_chart, pie_chart, render_chart
from .tables import (format_failures, format_pivot, format_profile,
                     format_ranking, format_table, sparkline)

__all__ = [
    "render_chart", "line_chart", "bar_chart", "pie_chart",
    "format_table", "format_pivot", "format_ranking", "sparkline",
    "format_profile", "format_failures",
]

from .html import html_report  # noqa: E402

__all__ += ["html_report"]
