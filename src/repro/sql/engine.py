"""Database facade tying tokenizer, parser, verifier and executor together."""

from __future__ import annotations

from .. import telemetry
from .authz import authorize, authorize_sql, statement_issues
from .catalog import Catalog, ColumnDef, SqlCatalogError, infer_type
from .executor import Result, execute, explain
from .parser import parse
from .plancache import PlanCache, plan_fingerprint
from .verify import VerificationReport, verify, verify_sql

__all__ = ["Database", "SqlError", "SqlAuthzError"]


class SqlError(ValueError):
    """Raised by :meth:`Database.query` when verification fails."""

    def __init__(self, report):
        super().__init__(report.summary())
        self.report = report


class SqlAuthzError(SqlError):
    """Raised by :meth:`Database.query` when authorization fails.

    ``issues`` holds the typed :class:`~repro.sql.authz.AuthzIssue`
    records so callers (the Q&A repair loop) can distinguish terminal
    ACL violations from repairable budget overruns.
    """

    def __init__(self, issues, sql=""):
        report = VerificationReport()
        for issue in issues:
            report.add(str(issue))
        super().__init__(report)
        self.issues = list(issues)
        self.sql = sql


class Database:
    """An in-memory relational database with verified query execution.

    The knowledge base and the Q&A module run on this engine.  Queries go
    through the same two-step gate as the paper's workflow: static
    verification first, execution only when the statement is clean.  An
    optional :class:`~repro.sql.authz.AuthorizationPolicy` (attached at
    construction or passed per call) adds a third gate: read-only
    statement allowlist, table/column ACLs and row/complexity budgets,
    enforced here — below any SQL-producing backend — so it cannot be
    bypassed.
    """

    def __init__(self, policy=None, plan_cache_size=256):
        self.catalog = Catalog()
        self.policy = policy
        # Prepared-plan cache: verified+authorized statement ASTs keyed
        # by (sql, schema version, policy), so hot Q&A query shapes skip
        # tokenize/parse/verify/authorize on repeat.  Size 0 disables.
        self.plan_cache = PlanCache(plan_cache_size) \
            if plan_cache_size else None

    # -- DDL / DML ---------------------------------------------------------
    def create_table(self, name, columns):
        """Create a table; ``columns`` is [(name, type), ...] or ColumnDefs."""
        defs = [c if isinstance(c, ColumnDef) else ColumnDef(*c)
                for c in columns]
        return self.catalog.create_table(name, defs)

    def create_table_from_rows(self, name, rows):
        """Create a table whose schema is inferred from dict rows."""
        if not rows:
            raise SqlCatalogError("cannot infer a schema from zero rows")
        first = rows[0]
        defs = []
        for key in first:
            sample = next((r[key] for r in rows if r.get(key) is not None),
                          None)
            defs.append(ColumnDef(key, "TEXT" if sample is None
                                  else infer_type(sample)))
        table = self.catalog.create_table(name, defs)
        table.insert_many(rows)
        return table

    def insert(self, table_name, rows):
        """Insert rows (tuples or dicts) into an existing table."""
        table = self.catalog.get(table_name)
        table.insert_many(rows)
        return len(rows)

    # -- queries ----------------------------------------------------------
    def verify(self, sql):
        """Static verification only; returns a VerificationReport."""
        return verify_sql(sql, self.catalog)

    def authorize(self, sql, policy=None):
        """Authorization check only; returns a list of AuthzIssues."""
        policy = policy if policy is not None else self.policy
        if policy is None:
            return []
        return authorize_sql(sql, policy, self.catalog)

    def query(self, sql, policy=None):
        """Verify, authorize, then execute.

        Raises :class:`SqlError` on a bad statement and
        :class:`SqlAuthzError` on a policy violation (the effective
        policy is the per-call one, else the attached default).  When a
        policy caps ``max_rows``, the returned result is truncated to
        that many rows and flagged ``truncated``.
        """
        policy = policy if policy is not None else self.policy
        statement = self._cached_statement(sql, policy)
        if statement is None:
            if policy is not None:
                gate = statement_issues(sql)
                if gate:
                    raise SqlAuthzError(gate, sql)
            report = verify_sql(sql, self.catalog)
            if not report.ok:
                raise SqlError(report)
            if policy is not None:
                issues = authorize(report.statement, policy, self.catalog)
                if issues:
                    raise SqlAuthzError(issues, sql)
            statement = report.statement
            if self.plan_cache is not None:
                self.plan_cache.put(
                    plan_fingerprint(sql, self.catalog.schema_version,
                                     policy), statement)
        result = execute(statement, self.catalog)
        result.sql = sql
        if policy is not None and policy.max_rows is not None \
                and len(result.rows) > policy.max_rows:
            result.rows = result.rows[:policy.max_rows]
            result.truncated = True
        return result

    def _cached_statement(self, sql, policy):
        """Verified statement from the plan cache, or None on a miss.

        Only statements that previously passed verification *and*
        authorization under the same policy and schema version are ever
        stored, so a hit may safely skip all three gates.
        """
        if self.plan_cache is None:
            return None
        key = plan_fingerprint(sql, self.catalog.schema_version, policy)
        statement = self.plan_cache.get(key)
        telemetry.inc("repro_sql_plan_cache_total",
                      result="hit" if statement is not None else "miss",
                      help="prepared-plan cache lookups")
        return statement

    def query_unchecked(self, sql):
        """Execute without the verification gate (tests / internal use)."""
        return execute(parse(sql), self.catalog)

    def explain(self, sql, policy=None):
        """Plan description (scans, pushdown, zone maps, join order,
        plan-cache verdict) for a statement."""
        cached = None
        if self.plan_cache is not None:
            policy = policy if policy is not None else self.policy
            key = plan_fingerprint(sql, self.catalog.schema_version, policy)
            cached = self.plan_cache.contains(key)
        return explain(parse(sql), self.catalog, cached=cached)

    # -- introspection ------------------------------------------------------
    def tables(self):
        return self.catalog.table_names()

    def schema(self):
        return self.catalog.schema_text()

    def table(self, name):
        return self.catalog.get(name)
