"""Database facade tying tokenizer, parser, verifier and executor together."""

from __future__ import annotations

from .catalog import Catalog, ColumnDef, SqlCatalogError, infer_type
from .executor import Result, execute, explain
from .parser import parse
from .verify import verify, verify_sql

__all__ = ["Database", "SqlError"]


class SqlError(ValueError):
    """Raised by :meth:`Database.query` when verification fails."""

    def __init__(self, report):
        super().__init__(report.summary())
        self.report = report


class Database:
    """An in-memory relational database with verified query execution.

    The knowledge base and the Q&A module run on this engine.  Queries go
    through the same two-step gate as the paper's workflow: static
    verification first, execution only when the statement is clean.
    """

    def __init__(self):
        self.catalog = Catalog()

    # -- DDL / DML ---------------------------------------------------------
    def create_table(self, name, columns):
        """Create a table; ``columns`` is [(name, type), ...] or ColumnDefs."""
        defs = [c if isinstance(c, ColumnDef) else ColumnDef(*c)
                for c in columns]
        return self.catalog.create_table(name, defs)

    def create_table_from_rows(self, name, rows):
        """Create a table whose schema is inferred from dict rows."""
        if not rows:
            raise SqlCatalogError("cannot infer a schema from zero rows")
        first = rows[0]
        defs = []
        for key in first:
            sample = next((r[key] for r in rows if r.get(key) is not None),
                          None)
            defs.append(ColumnDef(key, "TEXT" if sample is None
                                  else infer_type(sample)))
        table = self.catalog.create_table(name, defs)
        table.insert_many(rows)
        return table

    def insert(self, table_name, rows):
        """Insert rows (tuples or dicts) into an existing table."""
        table = self.catalog.get(table_name)
        table.insert_many(rows)
        return len(rows)

    # -- queries ----------------------------------------------------------
    def verify(self, sql):
        """Static verification only; returns a VerificationReport."""
        return verify_sql(sql, self.catalog)

    def query(self, sql):
        """Verify then execute; raises :class:`SqlError` on a bad statement."""
        report = verify_sql(sql, self.catalog)
        if not report.ok:
            raise SqlError(report)
        result = execute(report.statement, self.catalog)
        result.sql = sql
        return result

    def query_unchecked(self, sql):
        """Execute without the verification gate (tests / internal use)."""
        return execute(parse(sql), self.catalog)

    def explain(self, sql):
        """Access-plan description for a statement."""
        return explain(parse(sql), self.catalog)

    # -- introspection ------------------------------------------------------
    def tables(self):
        return self.catalog.table_names()

    def schema(self):
        return self.catalog.schema_text()

    def table(self, name):
        return self.catalog.get(name)
