"""Embedded in-memory relational SQL engine (from scratch).

Substitutes the results database the EasyTime Q&A module queries: a
tokenizer, recursive-descent parser, static verifier (the paper's
"SQL verified before execution" step), predicate-pushdown planner and
volcano-style executor.
"""

from .authz import (AuthorizationPolicy, AuthzIssue, authorize,
                    authorize_sql)
from .catalog import (Catalog, ColumnBatch, ColumnDef, SqlCatalogError,
                      Table, coerce_value, infer_type)
from .columnar import ColumnarUnsupported, execute_columnar
from .engine import Database, SqlAuthzError, SqlError
from .executor import Result, execute, execute_reference, explain
from .expr import SqlRuntimeError, like_to_regex
from .parser import parse
from .plancache import PlanCache, plan_fingerprint
from .stats import CHUNK_ROWS, ColumnStats, TableStats, table_stats, zone_map
from .tokens import SqlSyntaxError, tokenize
from .verify import VerificationReport, verify, verify_sql

__all__ = [
    "Database", "SqlError", "SqlAuthzError", "Result", "execute",
    "execute_reference", "execute_columnar", "ColumnarUnsupported",
    "explain", "parse", "tokenize", "SqlSyntaxError", "SqlRuntimeError",
    "SqlCatalogError", "Catalog", "Table", "ColumnDef", "ColumnBatch",
    "infer_type", "coerce_value", "VerificationReport", "verify",
    "verify_sql", "like_to_regex", "AuthorizationPolicy", "AuthzIssue",
    "authorize", "authorize_sql", "PlanCache", "plan_fingerprint",
    "ColumnStats", "TableStats", "table_stats", "zone_map", "CHUNK_ROWS",
]
