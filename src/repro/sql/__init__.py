"""Embedded in-memory relational SQL engine (from scratch).

Substitutes the results database the EasyTime Q&A module queries: a
tokenizer, recursive-descent parser, static verifier (the paper's
"SQL verified before execution" step), predicate-pushdown planner and
volcano-style executor.
"""

from .authz import (AuthorizationPolicy, AuthzIssue, authorize,
                    authorize_sql)
from .catalog import (Catalog, ColumnDef, SqlCatalogError, Table,
                      coerce_value, infer_type)
from .engine import Database, SqlAuthzError, SqlError
from .executor import Result, execute, explain
from .expr import SqlRuntimeError, like_to_regex
from .parser import parse
from .tokens import SqlSyntaxError, tokenize
from .verify import VerificationReport, verify, verify_sql

__all__ = [
    "Database", "SqlError", "SqlAuthzError", "Result", "execute", "explain",
    "parse", "tokenize", "SqlSyntaxError", "SqlRuntimeError",
    "SqlCatalogError", "Catalog", "Table", "ColumnDef", "infer_type",
    "coerce_value", "VerificationReport", "verify", "verify_sql",
    "like_to_regex", "AuthorizationPolicy", "AuthzIssue", "authorize",
    "authorize_sql",
]
