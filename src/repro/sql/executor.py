"""Query planning and execution for the embedded SQL engine.

Pipeline: AST → access plan (scans with pushed-down single-table
predicates, nested-loop joins) → row stream → optional hash aggregation →
projection → DISTINCT → sort → LIMIT/OFFSET.

The rule optimizer splits the WHERE clause into conjuncts and pushes every
conjunct that references a single table binding down into that table's
scan, so joins filter early — the textbook predicate-pushdown rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .catalog import SqlCatalogError
from .expr import Resolver, SqlRuntimeError, evaluate, truthy

__all__ = ["Result", "execute", "explain", "split_conjuncts",
           "referenced_bindings"]


@dataclass
class Result:
    """Query output: column names and row tuples."""

    columns: list
    rows: list
    sql: str = ""
    truncated: bool = False   # rows capped by an AuthorizationPolicy

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name):
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no output column {name!r}; columns: {self.columns}") \
                from None
        return [row[index] for row in self.rows]

    def scalar(self):
        """The single value of a 1×1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]


# ---------------------------------------------------------------------------
# Planning helpers
# ---------------------------------------------------------------------------

def split_conjuncts(expr):
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def referenced_bindings(expr, resolver):
    """The set of table bindings an expression touches."""
    out = set()

    def walk(node):
        if isinstance(node, ast.Column):
            binding, _ = resolver.resolve(node)
            out.add(binding)
        elif isinstance(node, ast.Star):
            out.update(b for b, _ in resolver.bindings)
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.FuncCall):
            for a in node.args:
                walk(a)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (ast.IsNull, ast.Like)):
            walk(node.operand)
            if isinstance(node, ast.Like):
                walk(node.pattern)
        elif isinstance(node, ast.Case):
            for cond, value in node.branches:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return out


def _contains_aggregate(expr):
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or \
            any(_contains_aggregate(i) for i in expr.items)
    if isinstance(expr, ast.Between):
        return any(_contains_aggregate(e)
                   for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, (ast.IsNull, ast.Like)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.Case):
        parts = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    return False


def _collect_aggregates(expr, out):
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            out.append(expr)
            return
        for a in expr.args:
            _collect_aggregates(a, out)
    elif isinstance(expr, ast.Unary):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.InList):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, ast.Between):
        for e in (expr.operand, expr.low, expr.high):
            _collect_aggregates(e, out)
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Case):
        for cond, value in expr.branches:
            _collect_aggregates(cond, out)
            _collect_aggregates(value, out)
        if expr.default is not None:
            _collect_aggregates(expr.default, out)


@dataclass
class _Plan:
    """Access plan: per-binding scan filters + residual join-level filters."""

    bindings: list                    # [(binding, table, kind, on_expr)]
    scan_filters: dict = field(default_factory=dict)
    residual: list = field(default_factory=list)

    def describe(self):
        lines = []
        for binding, table, kind, _ in self.bindings:
            pushed = len(self.scan_filters.get(binding, []))
            suffix = f" [{pushed} pushed predicate(s)]" if pushed else ""
            lines.append(f"{kind} scan {table.name} as {binding}{suffix}")
        if self.residual:
            lines.append(f"filter: {len(self.residual)} residual predicate(s)")
        return "\n".join(lines)


def _build_plan(select, catalog, resolver):
    bindings = []
    base = select.table
    bindings.append((base.binding, catalog.get(base.name), "INNER", None))
    for join in select.joins:
        bindings.append((join.table.binding, catalog.get(join.table.name),
                         join.kind, join.condition))
    plan = _Plan(bindings=bindings)
    if select.where is not None:
        left_joined = {b for b, _, kind, _ in bindings if kind == "LEFT"}
        for conjunct in split_conjuncts(select.where):
            refs = referenced_bindings(conjunct, resolver)
            if len(refs) == 1:
                target = next(iter(refs))
                # Pushing below a LEFT join would change NULL-extension
                # semantics, so those predicates stay residual.
                if target not in left_joined:
                    plan.scan_filters.setdefault(target, []).append(conjunct)
                    continue
            plan.residual.append(conjunct)
    return plan


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _scan_rows(binding, table, filters, resolver):
    if not filters:
        return list(table.rows)
    out = []
    for row in table.rows:
        env = {binding: row}
        if all(truthy(evaluate(f, env, resolver)) for f in filters):
            out.append(row)
    return out


def _equi_join_slots(condition, resolver, left_bindings, right_binding):
    """Detect ``left.col = right.col`` and return the two slots, or None.

    Enables the hash-join fast path; any other condition shape falls back
    to the nested-loop join.
    """
    if not (isinstance(condition, ast.Binary) and condition.op == "="
            and isinstance(condition.left, ast.Column)
            and isinstance(condition.right, ast.Column)):
        return None
    try:
        slot_a = resolver.resolve(condition.left)
        slot_b = resolver.resolve(condition.right)
    except SqlRuntimeError:
        return None
    if slot_a[0] in left_bindings and slot_b[0] == right_binding:
        return slot_a, slot_b
    if slot_b[0] in left_bindings and slot_a[0] == right_binding:
        return slot_b, slot_a
    return None


def _join_rows(plan, resolver):
    binding0, table0, _, _ = plan.bindings[0]
    envs = [{binding0: row}
            for row in _scan_rows(binding0, table0,
                                  plan.scan_filters.get(binding0, ()),
                                  resolver)]
    seen_bindings = {binding0}
    for binding, table, kind, condition in plan.bindings[1:]:
        right_rows = _scan_rows(binding, table,
                                plan.scan_filters.get(binding, ()), resolver)
        joined = []
        equi = None if condition is None else _equi_join_slots(
            condition, resolver, seen_bindings, binding)
        if equi is not None:
            # Hash join: build on the (smaller, already filtered) right
            # side, probe with each accumulated env.
            (left_bind, left_idx), (_, right_idx) = equi
            buckets = {}
            for row in right_rows:
                key = row[right_idx]
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            for env in envs:
                left_row = env.get(left_bind)
                key = None if left_row is None else left_row[left_idx]
                matches = buckets.get(key, ()) if key is not None else ()
                for row in matches:
                    candidate = dict(env)
                    candidate[binding] = row
                    joined.append(candidate)
                if kind == "LEFT" and not matches:
                    candidate = dict(env)
                    candidate[binding] = None
                    joined.append(candidate)
        else:
            for env in envs:
                matched = False
                for row in right_rows:
                    candidate = dict(env)
                    candidate[binding] = row
                    if condition is None or \
                            truthy(evaluate(condition, candidate, resolver)):
                        joined.append(candidate)
                        matched = True
                if kind == "LEFT" and not matched:
                    candidate = dict(env)
                    candidate[binding] = None
                    joined.append(candidate)
        envs = joined
        seen_bindings.add(binding)
    for conjunct in plan.residual:
        envs = [env for env in envs
                if truthy(evaluate(conjunct, env, resolver))]
    return envs


def _expand_items(select, resolver):
    """Expand SELECT * into explicit column items."""
    items = []
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            for binding, index, name in resolver.all_columns(item.expr.table):
                items.append(ast.SelectItem(
                    expr=ast.Column(name=name, table=binding), alias=name))
        else:
            items.append(item)
    return items


def _aggregate_value(agg, group_envs, resolver):
    if agg.name == "COUNT" and agg.args and isinstance(agg.args[0], ast.Star):
        return len(group_envs)
    if not agg.args:
        raise SqlRuntimeError(f"{agg.name} requires an argument")
    values = []
    for env in group_envs:
        value = evaluate(agg.args[0], env, resolver)
        if value is not None:
            values.append(value)
    if agg.distinct:
        seen, unique = set(), []
        for v in values:
            if v not in seen:
                seen.add(v)
                unique.append(v)
        values = unique
    if agg.name == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.name == "SUM":
        return sum(values)
    if agg.name == "AVG":
        return sum(values) / len(values)
    if agg.name == "MIN":
        return min(values)
    if agg.name == "MAX":
        return max(values)
    raise SqlRuntimeError(f"unknown aggregate {agg.name!r}")


def _group_key(exprs, env, resolver):
    return tuple(evaluate(e, env, resolver) for e in exprs)


def _sort_key(value):
    # NULLs sort first; mixed types fall back to string comparison.
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (1, "", value)
    return (2, str(value), 0)


def execute(select, catalog):
    """Execute a parsed SELECT against a catalog; returns a Result."""
    if select.table is None:
        # SELECT without FROM: evaluate items against an empty environment.
        resolver = Resolver([])
        items = [i for i in select.items]
        row = tuple(evaluate(i.expr, {}, resolver) for i in items)
        columns = [item.output_name(k) for k, item in enumerate(items)]
        return Result(columns=columns, rows=[row], sql=str(select))

    resolver = Resolver([(select.table.binding, catalog.get(select.table.name))]
                        + [(j.table.binding, catalog.get(j.table.name))
                           for j in select.joins])
    plan = _build_plan(select, catalog, resolver)
    envs = _join_rows(plan, resolver)
    items = _expand_items(select, resolver)
    columns = [item.output_name(k) for k, item in enumerate(items)]

    has_aggregates = any(_contains_aggregate(i.expr) for i in items) or \
        (select.having is not None and _contains_aggregate(select.having))
    grouped = bool(select.group_by) or has_aggregates

    output_rows = []
    order_values = []

    if grouped:
        groups = {}
        if select.group_by:
            for env in envs:
                key = _group_key(select.group_by, env, resolver)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = list(envs)
        agg_nodes = []
        for item in items:
            _collect_aggregates(item.expr, agg_nodes)
        if select.having is not None:
            _collect_aggregates(select.having, agg_nodes)
        for order in select.order_by:
            _collect_aggregates(order.expr, agg_nodes)
        for key, group_envs in groups.items():
            rep = group_envs[0] if group_envs else {}
            agg_values = {id(a): _aggregate_value(a, group_envs, resolver)
                          for a in agg_nodes}
            if select.having is not None:
                keep = evaluate(select.having, rep, resolver,
                                aggregates=agg_values)
                if not truthy(keep):
                    continue
            row = tuple(evaluate(i.expr, rep, resolver, aggregates=agg_values)
                        for i in items)
            output_rows.append(row)
            order_values.append(_order_tuple(select, row, columns, rep,
                                             resolver, agg_values))
    else:
        if select.having is not None:
            raise SqlRuntimeError("HAVING requires GROUP BY or aggregates")
        for env in envs:
            row = tuple(evaluate(i.expr, env, resolver) for i in items)
            output_rows.append(row)
            order_values.append(_order_tuple(select, row, columns, env,
                                             resolver, None))

    if select.distinct:
        seen = set()
        kept_rows, kept_order = [], []
        for row, order in zip(output_rows, order_values):
            marker = tuple((repr(type(v)), v) for v in row)
            if marker not in seen:
                seen.add(marker)
                kept_rows.append(row)
                kept_order.append(order)
        output_rows, order_values = kept_rows, kept_order

    if select.order_by:
        paired = list(zip(output_rows, order_values))
        # Stable multi-key sort: apply keys from last to first.
        for key_index in range(len(select.order_by) - 1, -1, -1):
            descending = select.order_by[key_index].descending
            paired.sort(key=lambda p: _sort_key(p[1][key_index]),
                        reverse=descending)
        output_rows = [row for row, _ in paired]

    if select.offset:
        output_rows = output_rows[select.offset:]
    if select.limit is not None:
        output_rows = output_rows[:select.limit]

    return Result(columns=columns, rows=output_rows, sql=str(select))


def _order_tuple(select, row, columns, env, resolver, agg_values):
    """Evaluate ORDER BY keys for one output row.

    A bare column name matching an output alias refers to the output value
    (SQL's alias-in-ORDER-BY rule); anything else is evaluated in the row
    context.
    """
    if not select.order_by:
        return ()
    keys = []
    for order in select.order_by:
        expr = order.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            position = expr.value
            if not 1 <= position <= len(row):
                raise SqlRuntimeError(
                    f"ORDER BY position {position} out of range")
            keys.append(row[position - 1])
            continue
        if isinstance(expr, ast.Column) and not expr.table \
                and expr.name in columns:
            keys.append(row[columns.index(expr.name)])
            continue
        keys.append(evaluate(expr, env, resolver, aggregates=agg_values))
    return tuple(keys)


def explain(select, catalog):
    """Describe the access plan (scans, pushed predicates, residuals)."""
    if select.table is None:
        return "constant select (no FROM)"
    resolver = Resolver([(select.table.binding, catalog.get(select.table.name))]
                        + [(j.table.binding, catalog.get(j.table.name))
                           for j in select.joins])
    return _build_plan(select, catalog, resolver).describe()
