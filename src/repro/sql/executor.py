"""Query execution for the embedded SQL engine.

Two executors share one planning layer (:mod:`.planner`):

* :func:`execute_reference` — the original row-at-a-time engine
  (predicate pushdown, hash/nested-loop joins, per-row evaluation
  through :func:`.expr.evaluate`).  It defines the engine's semantics.
* the vectorized columnar engine (:mod:`.columnar`) — numpy batch
  execution with zone-map pruning and cardinality-ordered joins.

:func:`execute` dispatches to the columnar engine and falls back to the
reference engine whenever the columnar path reports
:class:`~repro.sql.columnar.ColumnarUnsupported` — so results (and
errors) are always exactly the reference engine's.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from . import ast
from .columnar import ColumnarUnsupported, execute_columnar
from .expr import Resolver, SqlRuntimeError, evaluate, truthy
from .planner import (AccessPlan, build_plan, collect_aggregates,
                      contains_aggregate, describe_plan, equi_join_slots,
                      referenced_bindings, split_conjuncts)

__all__ = ["Result", "execute", "execute_reference", "explain",
           "split_conjuncts", "referenced_bindings"]

# Back-compat aliases: the verifier (and older call sites) import the
# planning helpers under their historical executor-private names.
_contains_aggregate = contains_aggregate
_collect_aggregates = collect_aggregates
_equi_join_slots = equi_join_slots
_Plan = AccessPlan
_build_plan = build_plan


@dataclass
class Result:
    """Query output: column names and row tuples."""

    columns: list
    rows: list
    sql: str = ""
    truncated: bool = False   # rows capped by an AuthorizationPolicy

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name):
        index_map = getattr(self, "_column_index", None)
        if index_map is None or len(index_map) != len(self.columns):
            index_map = {c: i for i, c in enumerate(self.columns)}
            object.__setattr__(self, "_column_index", index_map)
        index = index_map.get(name)
        if index is None:
            raise KeyError(
                f"no output column {name!r}; columns: {self.columns}")
        return [row[index] for row in self.rows]

    def scalar(self):
        """The single value of a 1×1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}")
        return self.rows[0][0]


# ---------------------------------------------------------------------------
# Reference (row-at-a-time) execution
# ---------------------------------------------------------------------------

def _scan_rows(binding, table, filters, resolver):
    if not filters:
        return list(table.rows)
    out = []
    for row in table.rows:
        env = {binding: row}
        if all(truthy(evaluate(f, env, resolver)) for f in filters):
            out.append(row)
    return out


def _join_rows(plan, resolver):
    binding0, table0, _, _ = plan.bindings[0]
    envs = [{binding0: row}
            for row in _scan_rows(binding0, table0,
                                  plan.scan_filters.get(binding0, ()),
                                  resolver)]
    seen_bindings = {binding0}
    for binding, table, kind, condition in plan.bindings[1:]:
        right_rows = _scan_rows(binding, table,
                                plan.scan_filters.get(binding, ()), resolver)
        joined = []
        equi = None if condition is None else equi_join_slots(
            condition, resolver, seen_bindings, binding)
        if equi is not None:
            # Hash join: build on the (smaller, already filtered) right
            # side, probe with each accumulated env.
            (left_bind, left_idx), (_, right_idx) = equi
            buckets = {}
            for row in right_rows:
                key = row[right_idx]
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            for env in envs:
                left_row = env.get(left_bind)
                key = None if left_row is None else left_row[left_idx]
                matches = buckets.get(key, ()) if key is not None else ()
                for row in matches:
                    candidate = dict(env)
                    candidate[binding] = row
                    joined.append(candidate)
                if kind == "LEFT" and not matches:
                    candidate = dict(env)
                    candidate[binding] = None
                    joined.append(candidate)
        else:
            for env in envs:
                matched = False
                for row in right_rows:
                    candidate = dict(env)
                    candidate[binding] = row
                    if condition is None or \
                            truthy(evaluate(condition, candidate, resolver)):
                        joined.append(candidate)
                        matched = True
                if kind == "LEFT" and not matched:
                    candidate = dict(env)
                    candidate[binding] = None
                    joined.append(candidate)
        envs = joined
        seen_bindings.add(binding)
    for conjunct in plan.residual:
        envs = [env for env in envs
                if truthy(evaluate(conjunct, env, resolver))]
    return envs


def _expand_items(select, resolver):
    """Expand SELECT * into explicit column items."""
    items = []
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            for binding, index, name in resolver.all_columns(item.expr.table):
                items.append(ast.SelectItem(
                    expr=ast.Column(name=name, table=binding), alias=name))
        else:
            items.append(item)
    return items


def _aggregate_value(agg, group_envs, resolver):
    if agg.name == "COUNT" and agg.args and isinstance(agg.args[0], ast.Star):
        return len(group_envs)
    if not agg.args:
        raise SqlRuntimeError(f"{agg.name} requires an argument")
    values = []
    for env in group_envs:
        value = evaluate(agg.args[0], env, resolver)
        if value is not None:
            values.append(value)
    if agg.distinct:
        seen, unique = set(), []
        for v in values:
            if v not in seen:
                seen.add(v)
                unique.append(v)
        values = unique
    if agg.name == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.name == "SUM":
        return sum(values)
    if agg.name == "AVG":
        return sum(values) / len(values)
    if agg.name == "MIN":
        return min(values)
    if agg.name == "MAX":
        return max(values)
    raise SqlRuntimeError(f"unknown aggregate {agg.name!r}")


def _group_key(exprs, env, resolver):
    return tuple(evaluate(e, env, resolver) for e in exprs)


def _sort_key(value):
    # NULLs sort first; mixed types fall back to string comparison.
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "", int(value))
    if isinstance(value, (int, float)):
        return (1, "", value)
    return (2, str(value), 0)


def execute_reference(select, catalog):
    """Row-at-a-time execution of a parsed SELECT; returns a Result.

    This is the engine's semantic reference: the columnar executor must
    reproduce its output exactly and falls back to it for anything
    outside the vectorized surface.
    """
    if select.table is None:
        # SELECT without FROM: evaluate items against an empty environment.
        resolver = Resolver([])
        items = [i for i in select.items]
        row = tuple(evaluate(i.expr, {}, resolver) for i in items)
        columns = [item.output_name(k) for k, item in enumerate(items)]
        return Result(columns=columns, rows=[row], sql=str(select))

    resolver = Resolver([(select.table.binding, catalog.get(select.table.name))]
                        + [(j.table.binding, catalog.get(j.table.name))
                           for j in select.joins])
    plan = build_plan(select, catalog, resolver)
    envs = _join_rows(plan, resolver)
    items = _expand_items(select, resolver)
    columns = [item.output_name(k) for k, item in enumerate(items)]

    has_aggregates = any(contains_aggregate(i.expr) for i in items) or \
        (select.having is not None and contains_aggregate(select.having))
    grouped = bool(select.group_by) or has_aggregates

    output_rows = []
    order_values = []

    if grouped:
        groups = {}
        if select.group_by:
            for env in envs:
                key = _group_key(select.group_by, env, resolver)
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = list(envs)
        agg_nodes = []
        for item in items:
            collect_aggregates(item.expr, agg_nodes)
        if select.having is not None:
            collect_aggregates(select.having, agg_nodes)
        for order in select.order_by:
            collect_aggregates(order.expr, agg_nodes)
        for key, group_envs in groups.items():
            rep = group_envs[0] if group_envs else {}
            agg_values = {id(a): _aggregate_value(a, group_envs, resolver)
                          for a in agg_nodes}
            if select.having is not None:
                keep = evaluate(select.having, rep, resolver,
                                aggregates=agg_values)
                if not truthy(keep):
                    continue
            row = tuple(evaluate(i.expr, rep, resolver, aggregates=agg_values)
                        for i in items)
            output_rows.append(row)
            order_values.append(_order_tuple(select, row, columns, rep,
                                             resolver, agg_values))
    else:
        if select.having is not None:
            raise SqlRuntimeError("HAVING requires GROUP BY or aggregates")
        for env in envs:
            row = tuple(evaluate(i.expr, env, resolver) for i in items)
            output_rows.append(row)
            order_values.append(_order_tuple(select, row, columns, env,
                                             resolver, None))

    if select.distinct:
        seen = set()
        kept_rows, kept_order = [], []
        for row, order in zip(output_rows, order_values):
            marker = tuple((repr(type(v)), v) for v in row)
            if marker not in seen:
                seen.add(marker)
                kept_rows.append(row)
                kept_order.append(order)
        output_rows, order_values = kept_rows, kept_order

    if select.order_by:
        paired = list(zip(output_rows, order_values))
        # Stable multi-key sort: apply keys from last to first.
        for key_index in range(len(select.order_by) - 1, -1, -1):
            descending = select.order_by[key_index].descending
            paired.sort(key=lambda p: _sort_key(p[1][key_index]),
                        reverse=descending)
        output_rows = [row for row, _ in paired]

    if select.offset:
        output_rows = output_rows[select.offset:]
    if select.limit is not None:
        output_rows = output_rows[:select.limit]

    return Result(columns=columns, rows=output_rows, sql=str(select))


def _order_tuple(select, row, columns, env, resolver, agg_values):
    """Evaluate ORDER BY keys for one output row.

    A bare column name matching an output alias refers to the output value
    (SQL's alias-in-ORDER-BY rule); anything else is evaluated in the row
    context.
    """
    if not select.order_by:
        return ()
    keys = []
    for order in select.order_by:
        expr = order.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            position = expr.value
            if not 1 <= position <= len(row):
                raise SqlRuntimeError(
                    f"ORDER BY position {position} out of range")
            keys.append(row[position - 1])
            continue
        if isinstance(expr, ast.Column) and not expr.table \
                and expr.name in columns:
            keys.append(row[columns.index(expr.name)])
            continue
        keys.append(evaluate(expr, env, resolver, aggregates=agg_values))
    return tuple(keys)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def execute(select, catalog):
    """Execute a parsed SELECT: columnar engine with reference fallback."""
    info = {}
    try:
        columns, rows = execute_columnar(select, catalog, info=info)
    except ColumnarUnsupported:
        telemetry.inc("repro_sql_fallback_total",
                      help="queries executed by the reference row engine")
        return execute_reference(select, catalog)
    telemetry.inc("repro_sql_batch_rows_total",
                  value=float(info.get("batch_rows", 0)),
                  help="rows scanned as columnar batches")
    pruned = info.get("chunks_pruned", 0)
    if pruned:
        telemetry.inc("repro_sql_chunks_pruned_total", value=float(pruned),
                      help="zone-map chunks skipped by scans")
    return Result(columns=columns, rows=rows, sql=str(select))


def explain(select, catalog, cached=None):
    """Describe the v2 plan: scans, pushdown, zone maps, join order.

    ``cached`` (None/False/True) is the Database facade's plan-cache
    verdict for the statement, rendered on the final line when known.
    """
    if select.table is None:
        return "constant select (no FROM)"
    resolver = Resolver([(select.table.binding, catalog.get(select.table.name))]
                        + [(j.table.binding, catalog.get(j.table.name))
                           for j in select.joins])
    return describe_plan(select, catalog, resolver, cached=cached)
