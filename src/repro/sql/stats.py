"""Table statistics and zone maps for the columnar SQL engine.

Two artefacts, both derived lazily from a table's columnar batches and
cached against :attr:`~repro.sql.catalog.Table.version`:

* :class:`ColumnStats` — per-column min / max / distinct-count (ndv) /
  null-count plus row count.  The optimizer uses these for join
  ordering (cardinality estimates) and predicate selectivity.
* :class:`ZoneMap` — per-chunk min / max / null-count over fixed-size
  row chunks.  A scan with a pushed-down range or equality predicate
  consults the zone map and skips chunks whose [min, max] interval
  cannot contain a match — classic min/max pruning.  Pruning only ever
  removes rows that cannot satisfy the predicate, so results are
  identical with or without it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColumnStats", "TableStats", "ZoneMap", "table_stats",
           "zone_map", "CHUNK_ROWS"]

#: Rows per zone-map chunk.  Small enough to prune selectively on
#: million-row tables, large enough that per-chunk bookkeeping is noise.
CHUNK_ROWS = 4096


class ColumnStats:
    """min/max/ndv/null-count for one column."""

    __slots__ = ("name", "type", "min", "max", "ndv", "null_count", "count")

    def __init__(self, name, type, min, max, ndv, null_count, count):
        self.name = name
        self.type = type
        self.min = min
        self.max = max
        self.ndv = ndv
        self.null_count = null_count
        self.count = count

    def __repr__(self):
        return (f"ColumnStats({self.name}: min={self.min!r} "
                f"max={self.max!r} ndv={self.ndv} "
                f"nulls={self.null_count}/{self.count})")


class TableStats:
    """Row count plus per-column :class:`ColumnStats`."""

    __slots__ = ("table_name", "row_count", "columns")

    def __init__(self, table_name, row_count, columns):
        self.table_name = table_name
        self.row_count = row_count
        self.columns = columns          # {column_name: ColumnStats}

    def column(self, name):
        return self.columns.get(name)

    def describe(self):
        lines = [f"{self.table_name}: {self.row_count} rows"]
        for st in self.columns.values():
            lines.append(f"  {st.name} {st.type}: min={st.min!r} "
                         f"max={st.max!r} ndv={st.ndv} "
                         f"nulls={st.null_count}")
        return "\n".join(lines)


def _column_stats(name, batch):
    n = len(batch)
    null_count = int(batch.mask.sum())
    valid = n - null_count
    if valid == 0:
        return ColumnStats(name, batch.type, None, None, 0, null_count, n)
    values = batch.values if null_count == 0 else batch.values[~batch.mask]
    if batch.values.dtype == object:
        try:
            uniq = len(set(values.tolist()))
            lo, hi = min(values.tolist()), max(values.tolist())
        except TypeError:       # mixed un-comparable values: stats degrade
            return ColumnStats(name, batch.type, None, None, None,
                               null_count, n)
        return ColumnStats(name, batch.type, lo, hi, uniq, null_count, n)
    uniq = len(np.unique(values))
    lo = values.min().item()
    hi = values.max().item()
    return ColumnStats(name, batch.type, lo, hi, uniq, null_count, n)


def table_stats(table):
    """Current :class:`TableStats` for a table (cached per version)."""
    cached = getattr(table, "_stats_cache", None)
    if cached is not None and cached[0] == table.version:
        return cached[1]
    columns = {}
    for i, col in enumerate(table.columns):
        columns[col.name] = _column_stats(col.name, table.batch(i))
    stats = TableStats(table.name, len(table), columns)
    table._stats_cache = (table.version, stats)
    return stats


class ZoneMap:
    """Per-chunk min/max/null-count for one column.

    ``mins``/``maxs`` are parallel lists (python values; None for an
    all-null chunk), ``null_counts`` a numpy int array, ``chunk_rows``
    the chunk size and ``n_rows`` the table length at build time.
    """

    __slots__ = ("mins", "maxs", "null_counts", "chunk_rows", "n_rows",
                 "orderable")

    def __init__(self, mins, maxs, null_counts, chunk_rows, n_rows,
                 orderable):
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        self.chunk_rows = chunk_rows
        self.n_rows = n_rows
        self.orderable = orderable

    @property
    def n_chunks(self):
        return len(self.mins)

    def chunk_slice(self, chunk):
        lo = chunk * self.chunk_rows
        return lo, min(lo + self.chunk_rows, self.n_rows)

    def surviving_chunks(self, op, value):
        """Chunk indices that may contain a row matching ``col <op> value``.

        ``op`` is one of ``= < <= > >=``; NULL rows never match a
        comparison, so all-null chunks are always prunable.  Returns
        None when the zone map cannot reason about the predicate (e.g.
        un-orderable values), meaning "keep everything".
        """
        if not self.orderable or value is None:
            return None
        keep = []
        for chunk in range(self.n_chunks):
            lo, hi = self.mins[chunk], self.maxs[chunk]
            if lo is None:              # all-null chunk
                continue
            try:
                if op == "=":
                    alive = lo <= value <= hi
                elif op == "<":
                    alive = lo < value
                elif op == "<=":
                    alive = lo <= value
                elif op == ">":
                    alive = hi > value
                elif op == ">=":
                    alive = hi >= value
                else:
                    return None
            except TypeError:           # cross-type comparison: keep chunk
                return None
            if alive:
                keep.append(chunk)
        return keep


def zone_map(table, col_index, chunk_rows=CHUNK_ROWS):
    """Zone map for one column (cached per table version)."""
    cache = getattr(table, "_zonemap_cache", None)
    if cache is None or cache[0] != table.version:
        cache = (table.version, {})
        table._zonemap_cache = cache
    key = (col_index, chunk_rows)
    zm = cache[1].get(key)
    if zm is not None:
        return zm
    batch = table.batch(col_index)
    n = len(batch)
    n_chunks = (n + chunk_rows - 1) // chunk_rows
    mins, maxs = [], []
    null_counts = np.zeros(n_chunks, dtype=np.int64)
    orderable = batch.values.dtype != object or batch.type == "TEXT"
    for chunk in range(n_chunks):
        lo = chunk * chunk_rows
        hi = min(lo + chunk_rows, n)
        mask = batch.mask[lo:hi]
        nulls = int(mask.sum())
        null_counts[chunk] = nulls
        if nulls == hi - lo:
            mins.append(None)
            maxs.append(None)
            continue
        values = batch.values[lo:hi]
        if nulls:
            values = values[~mask]
        if values.dtype == object:
            try:
                vals = values.tolist()
                mins.append(min(vals))
                maxs.append(max(vals))
            except TypeError:
                mins.append(None)
                maxs.append(None)
                orderable = False
        else:
            mins.append(values.min().item())
            maxs.append(values.max().item())
    zm = ZoneMap(mins, maxs, null_counts, chunk_rows, n, orderable)
    cache[1][key] = zm
    return zm
