"""Expression evaluation for the embedded SQL engine.

Evaluates AST expressions against a row environment (``{binding: row
tuple}``) using a resolver that maps column references to ``(binding,
index)`` slots.  NULL handling is simplified three-valued logic:
comparisons and arithmetic involving NULL yield NULL, which filters treat
as false; ``IS [NOT] NULL`` and ``COALESCE`` are the explicit NULL tools.
"""

from __future__ import annotations

import functools
import math
import re

from . import ast

__all__ = ["Resolver", "evaluate", "truthy", "SqlRuntimeError",
           "SCALAR_FUNCTIONS", "like_to_regex"]


class SqlRuntimeError(ValueError):
    """Raised for evaluation-time errors (bad function args, etc.)."""


class Resolver:
    """Maps column references to row-environment slots.

    ``bindings`` is an ordered list of ``(binding_name, table)`` pairs from
    the FROM/JOIN clauses.
    """

    def __init__(self, bindings):
        self.bindings = list(bindings)
        self._by_name = {name.lower(): (name, table)
                         for name, table in bindings}

    def resolve(self, column):
        """Return (binding, index) for a Column node."""
        if column.table:
            entry = self._by_name.get(column.table.lower())
            if entry is None:
                raise SqlRuntimeError(
                    f"unknown table alias {column.table!r}")
            binding, table = entry
            return binding, table.column_index(column.name)
        matches = []
        for binding, table in self.bindings:
            try:
                matches.append((binding, table.column_index(column.name)))
            except Exception:
                continue
        if not matches:
            raise SqlRuntimeError(f"unknown column {column.name!r}")
        if len(matches) > 1:
            raise SqlRuntimeError(
                f"ambiguous column {column.name!r}; qualify with a table "
                "alias")
        return matches[0]

    def all_columns(self, table_filter=""):
        """(binding, index, name) triples for SELECT * expansion."""
        out = []
        for binding, table in self.bindings:
            if table_filter and binding.lower() != table_filter.lower():
                continue
            for i, col in enumerate(table.columns):
                out.append((binding, i, col.name))
        if table_filter and not out:
            raise SqlRuntimeError(f"unknown table alias {table_filter!r}")
        return out


@functools.lru_cache(maxsize=512)
def like_to_regex(pattern):
    """Translate a SQL LIKE pattern to an anchored regular expression.

    Memoized: the row engine re-translates the pattern for every row and
    the columnar engine once per batch, so hot LIKE predicates hit the
    cache instead of recompiling.
    """
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


def _num(value, what):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SqlRuntimeError(f"{what} expects a number, got {value!r}")
    return value


def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    return None


def _fn_round(value, digits=0):
    if value is None:
        return None
    return round(_num(value, "ROUND"), int(digits))


def _fn_abs(value):
    return None if value is None else abs(_num(value, "ABS"))

def _fn_sqrt(value):
    if value is None:
        return None
    value = _num(value, "SQRT")
    if value < 0:
        raise SqlRuntimeError("SQRT of a negative number")
    return math.sqrt(value)


SCALAR_FUNCTIONS = {
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "SQRT": _fn_sqrt,
    "UPPER": lambda s: None if s is None else str(s).upper(),
    "LOWER": lambda s: None if s is None else str(s).lower(),
    "LENGTH": lambda s: None if s is None else len(str(s)),
    "COALESCE": _fn_coalesce,
}


def truthy(value):
    """SQL filter semantics: NULL and FALSE both reject the row."""
    return bool(value) and value is not None


def _compare(op, left, right):
    if left is None or right is None:
        return None
    # Numeric cross-type comparison is fine; text compares with text.
    num_left = isinstance(left, (int, float)) and not isinstance(left, bool)
    num_right = isinstance(right, (int, float)) and not isinstance(right, bool)
    if num_left != num_right and op not in ("=", "!="):
        raise SqlRuntimeError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}")
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise SqlRuntimeError(str(exc)) from None
    raise SqlRuntimeError(f"unknown comparison {op!r}")


def _arith(op, left, right):
    if left is None or right is None:
        return None
    left = _num(left, f"operator {op}")
    right = _num(right, f"operator {op}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL engines return NULL or error; we pick NULL.
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise SqlRuntimeError(f"unknown operator {op!r}")


def evaluate(expr, env, resolver, aggregates=None):
    """Evaluate an expression for one row environment.

    ``aggregates`` maps aggregate-node ids to precomputed values when
    evaluating the SELECT list of a grouped query.
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Column):
        binding, index = resolver.resolve(expr)
        row = env.get(binding)
        return None if row is None else row[index]
    if isinstance(expr, ast.Unary):
        value = evaluate(expr.operand, env, resolver, aggregates)
        if expr.op == "-":
            return None if value is None else -_num(value, "unary minus")
        if expr.op == "NOT":
            return None if value is None else not truthy(value)
        raise SqlRuntimeError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.Binary):
        if expr.op in ("AND", "OR"):
            left = evaluate(expr.left, env, resolver, aggregates)
            if expr.op == "AND":
                if left is not None and not truthy(left):
                    return False
                right = evaluate(expr.right, env, resolver, aggregates)
                if right is not None and not truthy(right):
                    return False
                if left is None or right is None:
                    return None
                return True
            # OR
            if left is not None and truthy(left):
                return True
            right = evaluate(expr.right, env, resolver, aggregates)
            if right is not None and truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = evaluate(expr.left, env, resolver, aggregates)
        right = evaluate(expr.right, env, resolver, aggregates)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        return _arith(expr.op, left, right)
    if isinstance(expr, ast.InList):
        value = evaluate(expr.operand, env, resolver, aggregates)
        if value is None:
            return None
        found = False
        for item in expr.items:
            candidate = evaluate(item, env, resolver, aggregates)
            if candidate is not None and _compare("=", value, candidate):
                found = True
                break
        return (not found) if expr.negated else found
    if isinstance(expr, ast.Between):
        value = evaluate(expr.operand, env, resolver, aggregates)
        low = evaluate(expr.low, env, resolver, aggregates)
        high = evaluate(expr.high, env, resolver, aggregates)
        if value is None or low is None or high is None:
            return None
        inside = _compare(">=", value, low) and _compare("<=", value, high)
        return (not inside) if expr.negated else inside
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, env, resolver, aggregates)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.Like):
        value = evaluate(expr.operand, env, resolver, aggregates)
        pattern = evaluate(expr.pattern, env, resolver, aggregates)
        if value is None or pattern is None:
            return None
        matched = bool(like_to_regex(str(pattern)).match(str(value)))
        return (not matched) if expr.negated else matched
    if isinstance(expr, ast.Case):
        for cond, result in expr.branches:
            if truthy(evaluate(cond, env, resolver, aggregates)):
                return evaluate(result, env, resolver, aggregates)
        if expr.default is not None:
            return evaluate(expr.default, env, resolver, aggregates)
        return None
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            if aggregates is None or id(expr) not in aggregates:
                raise SqlRuntimeError(
                    f"aggregate {expr.name} used outside a grouped context")
            return aggregates[id(expr)]
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise SqlRuntimeError(f"unknown function {expr.name!r}")
        args = [evaluate(a, env, resolver, aggregates) for a in expr.args]
        return fn(*args)
    if isinstance(expr, ast.Star):
        raise SqlRuntimeError("'*' is only valid in SELECT or COUNT(*)")
    raise SqlRuntimeError(f"cannot evaluate {type(expr).__name__}")
