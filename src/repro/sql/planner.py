"""Shared planning layer for the SQL engine's two executors.

Holds everything both the reference row engine (:mod:`.executor`) and
the vectorized columnar engine (:mod:`.columnar`) need:

* AST walking helpers (conjunct splitting, binding references,
  aggregate collection);
* the predicate-pushdown access plan (:class:`AccessPlan`);
* the statistics-driven **optimizer v2**: per-scan cardinality
  estimates from :mod:`.stats` and greedy cardinality-ordered join
  sequencing (:func:`order_joins`).  Reordering is purely physical —
  the columnar executor restores the reference row order afterwards —
  so it can never change results;
* the v2 ``EXPLAIN`` rendering (join order, cardinality estimates,
  zone-map pruning, plan-cache status).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .expr import SqlRuntimeError
from .stats import table_stats, zone_map

__all__ = ["split_conjuncts", "referenced_bindings", "AccessPlan",
           "build_plan", "estimate_scan_rows", "order_joins",
           "zone_prunable", "describe_plan", "equi_join_slots"]


def split_conjuncts(expr):
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def referenced_bindings(expr, resolver):
    """The set of table bindings an expression touches."""
    out = set()

    def walk(node):
        if isinstance(node, ast.Column):
            binding, _ = resolver.resolve(node)
            out.add(binding)
        elif isinstance(node, ast.Star):
            out.update(b for b, _ in resolver.bindings)
        elif isinstance(node, ast.Unary):
            walk(node.operand)
        elif isinstance(node, ast.Binary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.FuncCall):
            for a in node.args:
                walk(a)
        elif isinstance(node, ast.InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (ast.IsNull, ast.Like)):
            walk(node.operand)
            if isinstance(node, ast.Like):
                walk(node.pattern)
        elif isinstance(node, ast.Case):
            for cond, value in node.branches:
                walk(cond)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return out


def contains_aggregate(expr):
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.Binary):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, ast.InList):
        return contains_aggregate(expr.operand) or \
            any(contains_aggregate(i) for i in expr.items)
    if isinstance(expr, ast.Between):
        return any(contains_aggregate(e)
                   for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, (ast.IsNull, ast.Like)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, ast.Case):
        parts = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return any(contains_aggregate(p) for p in parts)
    return False


def collect_aggregates(expr, out):
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            out.append(expr)
            return
        for a in expr.args:
            collect_aggregates(a, out)
    elif isinstance(expr, ast.Unary):
        collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        collect_aggregates(expr.left, out)
        collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.InList):
        collect_aggregates(expr.operand, out)
        for item in expr.items:
            collect_aggregates(item, out)
    elif isinstance(expr, ast.Between):
        for e in (expr.operand, expr.low, expr.high):
            collect_aggregates(e, out)
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.Case):
        for cond, value in expr.branches:
            collect_aggregates(cond, out)
            collect_aggregates(value, out)
        if expr.default is not None:
            collect_aggregates(expr.default, out)


def equi_join_slots(condition, resolver, left_bindings, right_binding):
    """Detect ``left.col = right.col`` and return the two slots, or None.

    Enables the hash-join fast path; any other condition shape falls
    back to the nested-loop join (reference engine).
    """
    if not (isinstance(condition, ast.Binary) and condition.op == "="
            and isinstance(condition.left, ast.Column)
            and isinstance(condition.right, ast.Column)):
        return None
    try:
        slot_a = resolver.resolve(condition.left)
        slot_b = resolver.resolve(condition.right)
    except SqlRuntimeError:
        return None
    if slot_a[0] in left_bindings and slot_b[0] == right_binding:
        return slot_a, slot_b
    if slot_b[0] in left_bindings and slot_a[0] == right_binding:
        return slot_b, slot_a
    return None


@dataclass
class AccessPlan:
    """Access plan: per-binding scan filters + residual join-level filters."""

    bindings: list                    # [(binding, table, kind, on_expr)]
    scan_filters: dict = field(default_factory=dict)
    residual: list = field(default_factory=list)

    def describe(self):
        lines = []
        for binding, table, kind, _ in self.bindings:
            pushed = len(self.scan_filters.get(binding, []))
            suffix = f" [{pushed} pushed predicate(s)]" if pushed else ""
            lines.append(f"{kind} scan {table.name} as {binding}{suffix}")
        if self.residual:
            lines.append(f"filter: {len(self.residual)} residual predicate(s)")
        return "\n".join(lines)


def build_plan(select, catalog, resolver):
    """Split WHERE into pushed-down scan filters and residual predicates."""
    bindings = []
    base = select.table
    bindings.append((base.binding, catalog.get(base.name), "INNER", None))
    for join in select.joins:
        bindings.append((join.table.binding, catalog.get(join.table.name),
                         join.kind, join.condition))
    plan = AccessPlan(bindings=bindings)
    if select.where is not None:
        left_joined = {b for b, _, kind, _ in bindings if kind == "LEFT"}
        for conjunct in split_conjuncts(select.where):
            refs = referenced_bindings(conjunct, resolver)
            if len(refs) == 1:
                target = next(iter(refs))
                # Pushing below a LEFT join would change NULL-extension
                # semantics, so those predicates stay residual.
                if target not in left_joined:
                    plan.scan_filters.setdefault(target, []).append(conjunct)
                    continue
            plan.residual.append(conjunct)
    return plan


# ---------------------------------------------------------------------------
# Statistics-driven optimizer v2
# ---------------------------------------------------------------------------

def _literal_value(expr):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-" \
            and isinstance(expr.operand, ast.Literal) \
            and isinstance(expr.operand.value, (int, float)) \
            and not isinstance(expr.operand.value, bool):
        return -expr.operand.value
    return None


def _conjunct_selectivity(conjunct, binding, stats, resolver):
    """Rough fraction of rows a pushed-down conjunct keeps."""
    if isinstance(conjunct, ast.Binary) \
            and conjunct.op in ("=", "!=", "<", "<=", ">", ">="):
        sides = (conjunct.left, conjunct.right)
        col = next((s for s in sides if isinstance(s, ast.Column)), None)
        if col is not None:
            try:
                _, index = resolver.resolve(col)
            except SqlRuntimeError:
                return 0.5
            st = stats.column(col.name) if stats else None
            ndv = getattr(st, "ndv", None)
            if conjunct.op == "=":
                return 1.0 / max(ndv or 10, 1)
            if conjunct.op == "!=":
                return 1.0 - 1.0 / max(ndv or 10, 1)
            return 1.0 / 3.0
        return 0.5
    if isinstance(conjunct, ast.InList):
        return min(1.0, max(len(conjunct.items), 1) / 10.0)
    if isinstance(conjunct, ast.Between):
        return 0.25
    if isinstance(conjunct, ast.Like):
        return 0.25
    if isinstance(conjunct, ast.IsNull):
        return 0.1
    return 0.5


def estimate_scan_rows(binding, table, filters, resolver):
    """Cardinality estimate for one scan after its pushed predicates."""
    stats = table_stats(table)
    rows = float(stats.row_count)
    for conjunct in filters:
        rows *= _conjunct_selectivity(conjunct, binding, stats, resolver)
    return max(rows, 1.0) if stats.row_count else 0.0


def order_joins(plan, resolver):
    """Greedy cardinality-ordered join sequence for all-INNER equi joins.

    Returns ``(sequence, estimates, reordered)`` where ``sequence`` is a
    list of ``(binding, table, kind, condition)`` with the base first and
    ``condition=None``, or ``(None, estimates, False)`` when the shape
    is not safely reorderable (LEFT joins, non-equi conditions,
    disconnected graphs) — the caller then keeps the declared order.
    """
    estimates = {}
    for binding, table, _, _ in plan.bindings:
        estimates[binding] = estimate_scan_rows(
            binding, table, plan.scan_filters.get(binding, ()), resolver)
    if len(plan.bindings) < 2:
        return None, estimates, False
    if any(kind != "INNER" for _, _, kind, _ in plan.bindings[1:]):
        return None, estimates, False
    all_bindings = {b for b, _, _, _ in plan.bindings}
    joins = []
    for binding, table, kind, condition in plan.bindings[1:]:
        slots = equi_join_slots(condition, resolver,
                                all_bindings - {binding}, binding)
        if slots is None:
            return None, estimates, False
        other = slots[0][0]
        joins.append((binding, other, condition))
    by_binding = {b: (b, t, k, c) for b, t, k, c in plan.bindings}
    base = min(all_bindings, key=lambda b: (estimates[b], b))
    placed = {base}
    sequence = [(base, by_binding[base][1], "INNER", None)]
    pending = {b for b in all_bindings if b != base}
    conditions = [(b, o, c) for b, o, c in joins]
    while pending:
        candidates = []
        for binding, other, condition in conditions:
            if binding in placed and other in placed:
                continue
            if binding in placed and other in pending:
                candidates.append((other, condition))
            elif other in placed and binding in pending:
                candidates.append((binding, condition))
        if not candidates:
            return None, estimates, False
        nxt, condition = min(candidates,
                             key=lambda bc: (estimates[bc[0]], bc[0]))
        entry = by_binding[nxt]
        sequence.append((nxt, entry[1], "INNER", condition))
        placed.add(nxt)
        pending.discard(nxt)
    declared = [b for b, _, _, _ in plan.bindings]
    chosen = [b for b, _, _, _ in sequence]
    return sequence, estimates, chosen != declared


# ---------------------------------------------------------------------------
# Zone-map candidacy (shared by the scan and EXPLAIN)
# ---------------------------------------------------------------------------

_ZONE_OPS = {"=", "<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def zone_prunable(conjunct, binding, resolver):
    """``[(col_index, op, literal), ...]`` range checks a conjunct implies.

    Only simple shapes qualify: ``col <op> literal`` (either side) and
    non-negated ``col BETWEEN lit AND lit``.  Anything else returns [].
    """
    checks = []
    if isinstance(conjunct, ast.Binary) and conjunct.op in _ZONE_OPS:
        col, lit, op = None, None, conjunct.op
        if isinstance(conjunct.left, ast.Column):
            col, lit = conjunct.left, _literal_value(conjunct.right)
        elif isinstance(conjunct.right, ast.Column):
            col, lit = conjunct.right, _literal_value(conjunct.left)
            op = _FLIP[op]
        if col is not None and lit is not None:
            try:
                bind, index = resolver.resolve(col)
            except SqlRuntimeError:
                return []
            if bind == binding:
                checks.append((index, op, lit))
    elif isinstance(conjunct, ast.Between) and not conjunct.negated \
            and isinstance(conjunct.operand, ast.Column):
        low = _literal_value(conjunct.low)
        high = _literal_value(conjunct.high)
        if low is not None and high is not None:
            try:
                bind, index = resolver.resolve(conjunct.operand)
            except SqlRuntimeError:
                return []
            if bind == binding:
                checks.append((index, ">=", low))
                checks.append((index, "<=", high))
    return checks


def prune_chunks(table, binding, filters, resolver):
    """Surviving chunk ids for a scan, or ``(None, 0, 0)`` for no pruning."""
    checks = []
    for conjunct in filters:
        checks.extend(zone_prunable(conjunct, binding, resolver))
    if not checks or len(table) == 0:
        return None, 0, 0
    surviving = None
    total = 0
    for index, op, value in checks:
        zm = zone_map(table, index)
        total = zm.n_chunks
        keep = zm.surviving_chunks(op, value)
        if keep is None:
            continue
        keep = set(keep)
        surviving = keep if surviving is None else (surviving & keep)
    if surviving is None:
        return None, 0, 0
    return sorted(surviving), total - len(surviving), total


# ---------------------------------------------------------------------------
# EXPLAIN v2 rendering
# ---------------------------------------------------------------------------

def describe_plan(select, catalog, resolver, cached=None):
    """Render the v2 plan: scans, pushdown, join order, zone maps, cache.

    ``cached`` is None (unknown), False (cold) or True (prepared-plan
    cache hit) — the Database facade passes its plan-cache verdict.
    """
    plan = build_plan(select, catalog, resolver)
    sequence, estimates, reordered = order_joins(plan, resolver)
    lines = []
    for binding, table, kind, _ in plan.bindings:
        filters = plan.scan_filters.get(binding, ())
        pushed = len(filters)
        suffix = f" [{pushed} pushed predicate(s)]" if pushed else ""
        est = estimates.get(binding, 0.0)
        chunks, pruned, total = prune_chunks(table, binding, filters,
                                             resolver)
        zone = f" [zone-map: {pruned}/{total} chunks pruned]" \
            if total else ""
        lines.append(f"{kind} scan {table.name} as {binding}{suffix}"
                     f"{zone} (est. {est:.0f} rows)")
    if plan.residual:
        lines.append(f"filter: {len(plan.residual)} residual predicate(s)")
    if sequence is not None:
        order = " -> ".join(b for b, _, _, _ in sequence)
        tag = "reordered by cardinality" if reordered else "declared order"
        lines.append(f"join order: {order} ({tag})")
    elif len(plan.bindings) > 1:
        lines.append("join order: declared order (not reorderable)")
    if cached is not None:
        lines.append("plan cache: hit (parse/verify/authz skipped)"
                     if cached else "plan cache: miss")
    return "\n".join(lines)
