"""Static verification of SQL statements before execution.

The EasyTime Q&A workflow executes LLM-generated SQL only after it is
"verified for correctness" (Fig. 3, step 3).  This module implements that
gate: given a parsed statement and the catalog, it checks table and column
resolution, aggregate placement, and GROUP BY consistency, returning a
structured report instead of letting errors surface mid-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .catalog import SqlCatalogError
from .executor import _collect_aggregates, _contains_aggregate
from .expr import Resolver, SqlRuntimeError
from .parser import parse
from .tokens import SqlSyntaxError

__all__ = ["VerificationReport", "verify", "verify_sql"]


@dataclass
class VerificationReport:
    """Outcome of static verification; falsy when any issue was found."""

    issues: list = field(default_factory=list)
    statement: object = None

    @property
    def ok(self):
        return not self.issues

    def __bool__(self):
        return self.ok

    def add(self, message):
        self.issues.append(message)

    def summary(self):
        if self.ok:
            return "verified: OK"
        return "verified: FAILED\n" + "\n".join(f"- {i}" for i in self.issues)


def _walk_columns(expr, visit):
    if isinstance(expr, ast.Column):
        visit(expr)
    elif isinstance(expr, ast.Unary):
        _walk_columns(expr.operand, visit)
    elif isinstance(expr, ast.Binary):
        _walk_columns(expr.left, visit)
        _walk_columns(expr.right, visit)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            _walk_columns(a, visit)
    elif isinstance(expr, ast.InList):
        _walk_columns(expr.operand, visit)
        for item in expr.items:
            _walk_columns(item, visit)
    elif isinstance(expr, ast.Between):
        for e in (expr.operand, expr.low, expr.high):
            _walk_columns(e, visit)
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        _walk_columns(expr.operand, visit)
        if isinstance(expr, ast.Like):
            _walk_columns(expr.pattern, visit)
    elif isinstance(expr, ast.Case):
        for cond, value in expr.branches:
            _walk_columns(cond, visit)
            _walk_columns(value, visit)
        if expr.default is not None:
            _walk_columns(expr.default, visit)


def _check_no_nested_aggregates(expr, report):
    aggs = []
    _collect_aggregates(expr, aggs)
    for agg in aggs:
        for arg in agg.args:
            if _contains_aggregate(arg):
                report.add(f"nested aggregate in {agg}")


def _expr_is_grouped(expr, group_by, aliases):
    """True when ``expr`` is valid in a grouped context."""
    if any(str(expr) == str(g) for g in group_by):
        return True
    if isinstance(expr, ast.Column) and not expr.table \
            and expr.name in aliases:
        return True
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            return True
        return all(_expr_is_grouped(a, group_by, aliases) for a in expr.args)
    if isinstance(expr, ast.Unary):
        return _expr_is_grouped(expr.operand, group_by, aliases)
    if isinstance(expr, ast.Binary):
        return (_expr_is_grouped(expr.left, group_by, aliases)
                and _expr_is_grouped(expr.right, group_by, aliases))
    if isinstance(expr, ast.Case):
        parts = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            parts.append(expr.default)
        return all(_expr_is_grouped(p, group_by, aliases) for p in parts)
    return False


def verify(select, catalog):
    """Verify a parsed SELECT against the catalog; returns a report."""
    report = VerificationReport(statement=select)

    # 1. Tables resolve.
    bindings = []
    refs = ([] if select.table is None else [select.table]) \
        + [j.table for j in select.joins]
    seen_bindings = set()
    for ref in refs:
        if not catalog.has(ref.name):
            report.add(f"unknown table {ref.name!r} (tables: "
                       f"{', '.join(catalog.table_names()) or 'none'})")
            continue
        if ref.binding.lower() in seen_bindings:
            report.add(f"duplicate table alias {ref.binding!r}")
            continue
        seen_bindings.add(ref.binding.lower())
        bindings.append((ref.binding, catalog.get(ref.name)))
    if report.issues:
        return report

    resolver = Resolver(bindings)

    # 2. Columns resolve (unambiguously).
    def check_column(column):
        try:
            resolver.resolve(column)
        except SqlRuntimeError as exc:
            report.add(str(exc))

    scopes = [i.expr for i in select.items if not isinstance(i.expr, ast.Star)]
    scopes += [j.condition for j in select.joins]
    if select.where is not None:
        scopes.append(select.where)
    scopes += list(select.group_by)
    if select.having is not None:
        scopes.append(select.having)
    aliases = {i.alias for i in select.items if i.alias}
    for order in select.order_by:
        expr = order.expr
        if isinstance(expr, ast.Column) and not expr.table \
                and expr.name in aliases:
            continue  # alias reference, resolved against the output row
        if isinstance(expr, ast.Literal):
            continue  # positional reference
        scopes.append(expr)
    if select.table is not None:
        for expr in scopes:
            _walk_columns(expr, check_column)

    # 3. Star only with FROM.
    if select.table is None:
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                report.add("SELECT * requires a FROM clause")

    # 4. Aggregate placement.
    if select.where is not None and _contains_aggregate(select.where):
        report.add("aggregate function in WHERE clause (use HAVING)")
    for join in select.joins:
        if _contains_aggregate(join.condition):
            report.add("aggregate function in JOIN condition")
    for g in select.group_by:
        if _contains_aggregate(g):
            report.add("aggregate function in GROUP BY")
    for expr in scopes:
        _check_no_nested_aggregates(expr, report)
    if select.having is not None and not select.group_by \
            and not any(_contains_aggregate(i.expr) for i in select.items):
        report.add("HAVING without GROUP BY or aggregates")

    # 5. GROUP BY consistency: every non-aggregated output must be grouped.
    has_aggregates = any(_contains_aggregate(i.expr) for i in select.items) \
        or (select.having is not None and _contains_aggregate(select.having))
    if select.group_by or has_aggregates:
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                report.add("SELECT * is invalid in a grouped query")
                continue
            if not _expr_is_grouped(item.expr, select.group_by, set()):
                report.add(
                    f"non-aggregated expression {item.expr} must appear in "
                    "GROUP BY")

    # 6. LIMIT/OFFSET sanity.
    if select.limit is not None and select.limit < 0:
        report.add("LIMIT must be non-negative")
    if select.offset < 0:
        report.add("OFFSET must be non-negative")
    return report


def verify_sql(sql, catalog):
    """Parse + verify SQL text; syntax errors become report issues."""
    try:
        statement = parse(sql)
    except SqlSyntaxError as exc:
        report = VerificationReport()
        report.add(f"syntax error: {exc}")
        return report
    except SqlCatalogError as exc:  # pragma: no cover - defensive
        report = VerificationReport()
        report.add(str(exc))
        return report
    return verify(statement, catalog)
