"""Abstract syntax tree for the supported SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr", "Literal", "Column", "Star", "Unary", "Binary", "FuncCall",
    "InList", "Between", "IsNull", "Like", "Case", "SelectItem", "TableRef",
    "Join", "OrderItem", "Select", "AGGREGATES",
]

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int | float | str | bool | None

    def __str__(self):
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


@dataclass(frozen=True)
class Column(Expr):
    name: str
    table: str = ""

    def __str__(self):
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: str = ""

    def __str__(self):
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-', 'NOT'
    operand: Expr

    def __str__(self):
        return f"{self.op} ({self.operand})" if self.op == "NOT" \
            else f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # arithmetic, comparison, AND, OR
    left: Expr
    right: Expr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # upper-cased
    args: tuple = ()
    distinct: bool = False

    @property
    def is_aggregate(self):
        return self.name in AGGREGATES

    def __str__(self):
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple
    negated: bool = False

    def __str__(self):
        inner = ", ".join(str(i) for i in self.items)
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}IN ({inner}))"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self):
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def __str__(self):
        neg = "NOT " if self.negated else ""
        return f"({self.operand} IS {neg}NULL)"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def __str__(self):
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}LIKE {self.pattern})"


@dataclass(frozen=True)
class Case(Expr):
    branches: tuple  # ((cond, value), ...)
    default: Expr = None

    def __str__(self):
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str = ""

    def output_name(self, index):
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name
        return f"col{index}"

    def __str__(self):
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str = ""

    @property
    def binding(self):
        return self.alias or self.name

    def __str__(self):
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expr
    kind: str = "INNER"  # INNER | LEFT

    def __str__(self):
        return f"{self.kind} JOIN {self.table} ON {self.condition}"


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def __str__(self):
        return f"{self.expr} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Select:
    items: tuple
    table: TableRef = None
    joins: tuple = ()
    where: Expr = None
    group_by: tuple = ()
    having: Expr = None
    order_by: tuple = ()
    limit: int = None
    offset: int = 0
    distinct: bool = False

    def __str__(self):
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(i) for i in self.items))
        if self.table is not None:
            parts.append(f"FROM {self.table}")
        for join in self.joins:
            parts.append(str(join))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(g) for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)
