"""Catalog and in-memory storage for the embedded relational engine.

Storage is **columnar**: a :class:`Table` keeps one value list per
column (type-coerced on insert) plus a lazily materialised numpy batch
per column — a typed array and a null mask — that the vectorized
executor consumes.  Row tuples remain available through
:attr:`Table.rows` (cached, rebuilt on demand) for the reference row
engine and for persistence.

A monotonically increasing ``version`` on every table (and a
``schema_version`` on the catalog) invalidates cached batches,
statistics, zone maps and prepared plans when data or schema change.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColumnDef", "Table", "Catalog", "SqlCatalogError",
           "infer_type", "coerce_value", "TYPES", "ColumnBatch"]

TYPES = ("INT", "FLOAT", "TEXT", "BOOL")


class SqlCatalogError(ValueError):
    """Schema-level errors: unknown tables/columns, bad types."""


class ColumnDef:
    """Column name + declared type."""

    __slots__ = ("name", "type")

    def __init__(self, name, type):
        if type not in TYPES:
            raise SqlCatalogError(
                f"unknown type {type!r}; expected one of {TYPES}")
        self.name = name
        self.type = type

    def __repr__(self):
        return f"ColumnDef({self.name!r}, {self.type!r})"

    def __eq__(self, other):
        return (isinstance(other, ColumnDef)
                and (self.name, self.type) == (other.name, other.type))


def infer_type(value):
    """Map a Python value to an engine type name."""
    if isinstance(value, bool):
        return "BOOL"
    if isinstance(value, int):
        return "INT"
    if isinstance(value, float):
        return "FLOAT"
    if isinstance(value, str):
        return "TEXT"
    raise SqlCatalogError(f"unsupported value type {type(value).__name__}")


def coerce_value(value, type):
    """Coerce a Python value into a column's type (None passes through)."""
    if value is None:
        return None
    try:
        if type == "INT":
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if type == "FLOAT":
            return float(value)
        if type == "TEXT":
            return str(value)
        if type == "BOOL":
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise SqlCatalogError(f"cannot coerce {value!r} to {type}: {exc}") \
            from None
    raise SqlCatalogError(f"unknown type {type!r}")


def _coerce_column(values, type):
    """One coercion pass over a whole column (the bulk-insert fast path)."""
    if type == "INT":
        return [None if v is None else int(v) for v in values]
    if type == "FLOAT":
        return [None if v is None else float(v) for v in values]
    if type == "TEXT":
        return [None if v is None else str(v) for v in values]
    if type == "BOOL":
        return [None if v is None else bool(v) for v in values]
    raise SqlCatalogError(f"unknown type {type!r}")


class ColumnBatch:
    """A materialised column: typed numpy values plus a null mask.

    ``values`` is ``int64``/``float64``/``bool_`` for the numeric types
    and ``object`` for TEXT (or for INT columns whose values overflow
    int64).  Null slots hold a type-appropriate filler in ``values``;
    ``mask`` is True where the value is NULL.
    """

    __slots__ = ("values", "mask", "type")

    def __init__(self, values, mask, type):
        self.values = values
        self.mask = mask
        self.type = type

    def __len__(self):
        return len(self.values)

    def take(self, indices):
        """Gather rows; index -1 yields a NULL slot (left-join padding)."""
        values = self.values[indices]
        mask = self.mask[indices]
        pad = indices < 0
        if pad.any():
            mask = mask | pad
        return ColumnBatch(values, mask, self.type)


def _build_batch(values, type):
    """Materialise a python value list into a :class:`ColumnBatch`."""
    n = len(values)
    mask = np.fromiter((v is None for v in values), dtype=bool, count=n)
    if type == "TEXT":
        arr = np.empty(n, dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
        return ColumnBatch(arr, mask, type)
    if type == "BOOL":
        arr = np.fromiter((bool(v) if v is not None else False
                           for v in values), dtype=bool, count=n)
        return ColumnBatch(arr, mask, type)
    if type == "INT":
        try:
            arr = np.fromiter((v if v is not None else 0 for v in values),
                              dtype=np.int64, count=n)
        except OverflowError:
            arr = np.empty(n, dtype=object)
            for i, v in enumerate(values):
                arr[i] = v
            return ColumnBatch(arr, mask, type)
        return ColumnBatch(arr, mask, type)
    # FLOAT
    arr = np.fromiter((v if v is not None else 0.0 for v in values),
                      dtype=np.float64, count=n)
    return ColumnBatch(arr, mask, type)


class Table:
    """A named relation stored as typed column value lists."""

    def __init__(self, name, columns):
        if not columns:
            raise SqlCatalogError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SqlCatalogError(f"duplicate column names in {name!r}")
        self.name = name
        self.columns = list(columns)
        self.version = 0
        self._data = [[] for _ in self.columns]   # per-column value lists
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        self._rows_cache = None
        self._rows_version = -1
        self._batch_cache = {}                    # col index -> ColumnBatch
        self._batch_version = -1

    # -- schema ------------------------------------------------------------
    def column_index(self, name):
        try:
            return self._index[name]
        except KeyError:
            raise SqlCatalogError(
                f"no column {name!r} in table {self.name!r}; columns: "
                f"{[c.name for c in self.columns]}") from None

    def column_type(self, name):
        return self.columns[self.column_index(name)].type

    # -- mutation ----------------------------------------------------------
    def insert(self, row):
        """Insert one row (sequence or dict); values are type-coerced."""
        if isinstance(row, dict):
            row = [row.get(c.name) for c in self.columns]
        if len(row) != len(self.columns):
            raise SqlCatalogError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.columns)} columns")
        coerced = [coerce_value(v, c.type)
                   for v, c in zip(row, self.columns)]
        for store, value in zip(self._data, coerced):
            store.append(value)
        self.version += 1

    def insert_many(self, rows):
        """Bulk insert: one transpose + one coercion pass per column.

        Accepts sequences or dicts (mixed is fine).  All-or-nothing: a
        bad row leaves the table untouched.
        """
        rows = list(rows)
        if not rows:
            return
        width = len(self.columns)
        fixed = []
        for row in rows:
            if isinstance(row, dict):
                row = [row.get(c.name) for c in self.columns]
            else:
                row = list(row)
            if len(row) != width:
                raise SqlCatalogError(
                    f"row has {len(row)} values, table {self.name!r} has "
                    f"{width} columns")
            fixed.append(row)
        transposed = list(zip(*fixed))
        coerced = [_coerce_column(values, c.type)
                   for values, c in zip(transposed, self.columns)]
        for store, values in zip(self._data, coerced):
            store.extend(values)
        self.version += 1

    # -- access ------------------------------------------------------------
    @property
    def rows(self):
        """Row tuples (cached view over the columnar store)."""
        if self._rows_version != self.version:
            self._rows_cache = list(zip(*self._data)) if self._data[0] \
                else []
            self._rows_version = self.version
        return self._rows_cache

    def column_values(self, index):
        """The raw python value list for one column (read-only use)."""
        return self._data[index]

    def batch(self, index):
        """The :class:`ColumnBatch` for one column (cached per version)."""
        if self._batch_version != self.version:
            self._batch_cache = {}
            self._batch_version = self.version
        batch = self._batch_cache.get(index)
        if batch is None:
            batch = _build_batch(self._data[index],
                                 self.columns[index].type)
            self._batch_cache[index] = batch
        return batch

    def __len__(self):
        return len(self._data[0]) if self._data else 0

    def __repr__(self):
        return f"Table({self.name!r}, {len(self)} rows)"


class Catalog:
    """Case-insensitive table namespace with a schema version."""

    def __init__(self):
        self._tables = {}
        self.schema_version = 0

    def create_table(self, name, columns):
        key = name.lower()
        if key in self._tables:
            raise SqlCatalogError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[key] = table
        self.schema_version += 1
        return table

    def drop_table(self, name):
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(f"no table named {name!r}") from None
        self.schema_version += 1

    def get(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(
                f"no table named {name!r}; tables: {self.table_names()}"
            ) from None

    def has(self, name):
        return name.lower() in self._tables

    def table_names(self):
        return sorted(t.name for t in self._tables.values())

    def schema_text(self):
        """Human-readable schema dump (used in NL2SQL prompt context)."""
        lines = []
        for name in self.table_names():
            table = self.get(name)
            cols = ", ".join(f"{c.name} {c.type}" for c in table.columns)
            lines.append(f"{table.name}({cols})")
        return "\n".join(lines)
