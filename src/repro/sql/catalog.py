"""Catalog and in-memory storage for the embedded relational engine."""

from __future__ import annotations

__all__ = ["ColumnDef", "Table", "Catalog", "SqlCatalogError",
           "infer_type", "coerce_value", "TYPES"]

TYPES = ("INT", "FLOAT", "TEXT", "BOOL")


class SqlCatalogError(ValueError):
    """Schema-level errors: unknown tables/columns, bad types."""


class ColumnDef:
    """Column name + declared type."""

    __slots__ = ("name", "type")

    def __init__(self, name, type):
        if type not in TYPES:
            raise SqlCatalogError(
                f"unknown type {type!r}; expected one of {TYPES}")
        self.name = name
        self.type = type

    def __repr__(self):
        return f"ColumnDef({self.name!r}, {self.type!r})"

    def __eq__(self, other):
        return (isinstance(other, ColumnDef)
                and (self.name, self.type) == (other.name, other.type))


def infer_type(value):
    """Map a Python value to an engine type name."""
    if isinstance(value, bool):
        return "BOOL"
    if isinstance(value, int):
        return "INT"
    if isinstance(value, float):
        return "FLOAT"
    if isinstance(value, str):
        return "TEXT"
    raise SqlCatalogError(f"unsupported value type {type(value).__name__}")


def coerce_value(value, type):
    """Coerce a Python value into a column's type (None passes through)."""
    if value is None:
        return None
    try:
        if type == "INT":
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if type == "FLOAT":
            return float(value)
        if type == "TEXT":
            return str(value)
        if type == "BOOL":
            return bool(value)
    except (TypeError, ValueError) as exc:
        raise SqlCatalogError(f"cannot coerce {value!r} to {type}: {exc}") \
            from None
    raise SqlCatalogError(f"unknown type {type!r}")


class Table:
    """A named relation: column definitions plus row tuples."""

    def __init__(self, name, columns):
        if not columns:
            raise SqlCatalogError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SqlCatalogError(f"duplicate column names in {name!r}")
        self.name = name
        self.columns = list(columns)
        self.rows = []
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    def column_index(self, name):
        try:
            return self._index[name]
        except KeyError:
            raise SqlCatalogError(
                f"no column {name!r} in table {self.name!r}; columns: "
                f"{[c.name for c in self.columns]}") from None

    def column_type(self, name):
        return self.columns[self.column_index(name)].type

    def insert(self, row):
        """Insert one row (sequence or dict); values are type-coerced."""
        if isinstance(row, dict):
            row = [row.get(c.name) for c in self.columns]
        if len(row) != len(self.columns):
            raise SqlCatalogError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.columns)} columns")
        coerced = tuple(coerce_value(v, c.type)
                        for v, c in zip(row, self.columns))
        self.rows.append(coerced)

    def insert_many(self, rows):
        for row in rows:
            self.insert(row)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return f"Table({self.name!r}, {len(self.rows)} rows)"


class Catalog:
    """Case-insensitive table namespace."""

    def __init__(self):
        self._tables = {}

    def create_table(self, name, columns):
        key = name.lower()
        if key in self._tables:
            raise SqlCatalogError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[key] = table
        return table

    def drop_table(self, name):
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(f"no table named {name!r}") from None

    def get(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SqlCatalogError(
                f"no table named {name!r}; tables: {self.table_names()}"
            ) from None

    def has(self, name):
        return name.lower() in self._tables

    def table_names(self):
        return sorted(t.name for t in self._tables.values())

    def schema_text(self):
        """Human-readable schema dump (used in NL2SQL prompt context)."""
        lines = []
        for name in self.table_names():
            table = self.get(name)
            cols = ", ".join(f"{c.name} {c.type}" for c in table.columns)
            lines.append(f"{table.name}({cols})")
        return "\n".join(lines)
