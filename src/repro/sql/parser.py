"""Recursive-descent SQL parser producing :mod:`repro.sql.ast` trees.

Grammar (one SELECT statement, optional trailing semicolon)::

    select     := SELECT [DISTINCT] items [FROM table_ref join* ]
                  [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                  [ORDER BY order_list] [LIMIT num [OFFSET num]]
    items      := item (',' item)*          item := expr [[AS] ident] | '*'
    join       := [INNER|LEFT] JOIN table_ref ON expr
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := literal | func '(' args ')' | column | '(' expr ')' | CASE
"""

from __future__ import annotations

from . import ast
from .tokens import SqlSyntaxError, Token, tokenize

__all__ = ["parse", "SqlSyntaxError", "MAX_EXPR_DEPTH"]

_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}

#: Explicit recursion ceiling for nested expressions.  Hostile inputs
#: like ``SELECT ((((…1…))))`` with thousands of parens must surface as
#: one typed :class:`SqlSyntaxError`, never a ``RecursionError``.
MAX_EXPR_DEPTH = 64


class _Parser:
    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self.i = 0
        self.depth = 0

    # -- token helpers -----------------------------------------------------
    @property
    def cur(self):
        return self.tokens[self.i]

    def advance(self):
        tok = self.tokens[self.i]
        if tok.kind != "EOF":
            self.i += 1
        return tok

    def error(self, message):
        tok = self.cur
        context = self.text[max(tok.pos - 20, 0):tok.pos + 20]
        raise SqlSyntaxError(
            f"{message} at position {tok.pos} (near ...{context!r}...)")

    def accept_kw(self, *names):
        if self.cur.is_kw(*names):
            return self.advance()
        return None

    def expect_kw(self, name):
        if not self.cur.is_kw(name):
            self.error(f"expected {name}")
        return self.advance()

    def accept_punct(self, value):
        if self.cur.kind == "PUNCT" and self.cur.value == value:
            return self.advance()
        return None

    def expect_punct(self, value):
        if not self.accept_punct(value):
            self.error(f"expected {value!r}")

    def accept_op(self, *values):
        if self.cur.kind == "OP" and self.cur.value in values:
            return self.advance()
        return None

    def expect_ident(self, what="identifier"):
        if self.cur.kind != "IDENT":
            self.error(f"expected {what}")
        return self.advance().value

    # -- grammar ---------------------------------------------------------
    def parse_select(self):
        self.expect_kw("SELECT")
        distinct = bool(self.accept_kw("DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())

        table, joins = None, []
        if self.accept_kw("FROM"):
            table = self.parse_table_ref()
            while True:
                kind = None
                if self.accept_kw("INNER"):
                    kind = "INNER"
                elif self.accept_kw("LEFT"):
                    kind = "LEFT"
                if self.accept_kw("JOIN"):
                    kind = kind or "INNER"
                elif kind:
                    self.error("expected JOIN")
                else:
                    break
                ref = self.parse_table_ref()
                self.expect_kw("ON")
                condition = self.parse_expr()
                joins.append(ast.Join(table=ref, condition=condition,
                                      kind=kind))

        where = self.parse_expr() if self.accept_kw("WHERE") else None

        group_by = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_kw("HAVING") else None

        order_by = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())

        limit, offset = None, 0
        if self.accept_kw("LIMIT"):
            limit = self.parse_int("LIMIT")
            if self.accept_kw("OFFSET"):
                offset = self.parse_int("OFFSET")

        self.accept_punct(";")
        if self.cur.kind != "EOF":
            self.error("unexpected trailing input")
        return ast.Select(items=tuple(items), table=table,
                          joins=tuple(joins), where=where,
                          group_by=tuple(group_by), having=having,
                          order_by=tuple(order_by), limit=limit,
                          offset=offset, distinct=distinct)

    def parse_int(self, what):
        if self.cur.kind != "NUM" or "." in self.cur.value:
            self.error(f"expected integer after {what}")
        return int(self.advance().value)

    def parse_select_item(self):
        if self.accept_op("*"):
            return ast.SelectItem(expr=ast.Star())
        expr = self.parse_expr()
        alias = ""
        if self.accept_kw("AS"):
            alias = self.expect_ident("alias")
        elif self.cur.kind == "IDENT":
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self):
        name = self.expect_ident("table name")
        alias = ""
        if self.accept_kw("AS"):
            alias = self.expect_ident("table alias")
        elif self.cur.kind == "IDENT":
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def parse_order_item(self):
        expr = self.parse_expr()
        descending = False
        if self.accept_kw("DESC"):
            descending = True
        elif self.accept_kw("ASC"):
            descending = False
        return ast.OrderItem(expr=expr, descending=descending)

    # -- expressions ---------------------------------------------------------
    def _descend(self):
        self.depth += 1
        if self.depth > MAX_EXPR_DEPTH:
            self.error(f"expression nested deeper than {MAX_EXPR_DEPTH}")

    def parse_expr(self):
        self._descend()
        try:
            return self.parse_or()
        finally:
            self.depth -= 1

    def parse_or(self):
        left = self.parse_and()
        chained = 0
        while self.accept_kw("OR"):
            # Chained terms build a left-deep tree: its depth, not the
            # parser's recursion, is what downstream tree walks pay, so
            # each link spends depth budget too.
            self._descend()
            chained += 1
            left = ast.Binary("OR", left, self.parse_and())
        self.depth -= chained
        return left

    def parse_and(self):
        left = self.parse_not()
        chained = 0
        while self.accept_kw("AND"):
            self._descend()
            chained += 1
            left = ast.Binary("AND", left, self.parse_not())
        self.depth -= chained
        return left

    def parse_not(self):
        if self.accept_kw("NOT"):
            self._descend()
            try:
                return ast.Unary("NOT", self.parse_not())
            finally:
                self.depth -= 1
        return self.parse_predicate()

    def parse_predicate(self):
        left = self.parse_additive()
        op_tok = self.accept_op(*_COMPARISONS)
        if op_tok:
            return ast.Binary(op_tok.value, left, self.parse_additive())
        negated = bool(self.accept_kw("NOT"))
        if self.accept_kw("IN"):
            self.expect_punct("(")
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated=negated)
        if self.accept_kw("BETWEEN"):
            low = self.parse_additive()
            self.expect_kw("AND")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self.accept_kw("LIKE"):
            return ast.Like(left, self.parse_additive(), negated=negated)
        if self.accept_kw("IS"):
            neg = bool(self.accept_kw("NOT"))
            self.expect_kw("NULL")
            return ast.IsNull(left, negated=neg)
        if negated:
            self.error("expected IN, BETWEEN or LIKE after NOT")
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        chained = 0
        while True:
            tok = self.accept_op("+", "-")
            if not tok:
                self.depth -= chained
                return left
            self._descend()
            chained += 1
            left = ast.Binary(tok.value, left, self.parse_multiplicative())

    def parse_multiplicative(self):
        left = self.parse_unary()
        chained = 0
        while True:
            tok = self.accept_op("*", "/", "%")
            if not tok:
                self.depth -= chained
                return left
            self._descend()
            chained += 1
            left = ast.Binary(tok.value, left, self.parse_unary())

    def parse_unary(self):
        if self.accept_op("-"):
            self._descend()
            try:
                return ast.Unary("-", self.parse_unary())
            finally:
                self.depth -= 1
        return self.parse_primary()

    def parse_primary(self):
        tok = self.cur
        if tok.kind == "NUM":
            self.advance()
            value = float(tok.value) if "." in tok.value or "e" in tok.value \
                or "E" in tok.value else int(tok.value)
            return ast.Literal(value)
        if tok.kind == "STR":
            self.advance()
            return ast.Literal(tok.value)
        if tok.is_kw("NULL"):
            self.advance()
            return ast.Literal(None)
        if tok.is_kw("TRUE"):
            self.advance()
            return ast.Literal(True)
        if tok.is_kw("FALSE"):
            self.advance()
            return ast.Literal(False)
        if tok.is_kw("CASE"):
            return self.parse_case()
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if tok.kind == "IDENT":
            self.advance()
            if self.accept_punct("("):
                return self.finish_func(tok.value)
            if self.accept_punct("."):
                nxt = self.cur
                if nxt.kind == "OP" and nxt.value == "*":
                    self.advance()
                    return ast.Star(table=tok.value)
                column = self.expect_ident("column name")
                return ast.Column(name=column, table=tok.value)
            return ast.Column(name=tok.value)
        self.error("expected expression")

    def parse_case(self):
        self.expect_kw("CASE")
        branches = []
        while self.accept_kw("WHEN"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            branches.append((cond, self.parse_expr()))
        if not branches:
            self.error("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self.accept_kw("ELSE") else None
        self.expect_kw("END")
        return ast.Case(branches=tuple(branches), default=default)

    def finish_func(self, name):
        upper = name.upper()
        distinct = bool(self.accept_kw("DISTINCT"))
        args = []
        if self.cur.kind == "OP" and self.cur.value == "*":
            self.advance()
            args.append(ast.Star())
        elif not (self.cur.kind == "PUNCT" and self.cur.value == ")"):
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        return ast.FuncCall(name=upper, args=tuple(args), distinct=distinct)


def parse(text):
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` on error."""
    return _Parser(tokenize(text), text).parse_select()
