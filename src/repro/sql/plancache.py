"""Prepared-query plan cache for the SQL engine.

Caches the *verified, authorized* statement AST for hot query shapes so
a repeated query skips tokenize/parse/verify/authorize entirely — the
same idea as the artifact cache, applied to query plans.  Entries are
keyed by a fingerprint of the SQL text, the catalog's schema version
(any DDL invalidates every plan) and a canonical rendering of the
effective :class:`~repro.sql.authz.AuthorizationPolicy` (a plan proven
clean under one policy must not leak past a stricter one).

Only statements that passed every gate are ever stored, so a cache hit
is exactly as safe as the cold path.  Table *data* versions are not part
of the key: a plan is schema- and policy-dependent, never row-dependent
(statistics-driven join reordering happens at execution time against
live statistics).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

__all__ = ["PlanCache", "plan_fingerprint"]


def _policy_key(policy):
    """Canonical, order-independent rendering of a policy."""
    if policy is None:
        return "none"
    if policy.tables is None:
        tables = "all"
    else:
        parts = []
        for name in sorted(policy.tables, key=str.lower):
            cols = policy.tables[name]
            rendered = "*" if cols is None else ",".join(sorted(cols))
            parts.append(f"{name.lower()}:{rendered}")
        tables = ";".join(parts)
    budgets = (policy.max_limit, policy.max_rows, policy.max_joins,
               policy.max_predicates, policy.max_expr_depth,
               policy.max_in_list)
    return f"{tables}|{budgets}"


def plan_fingerprint(sql, schema_version, policy=None):
    """Stable cache key for (sql text, schema version, policy)."""
    digest = hashlib.sha256()
    digest.update(sql.encode("utf-8", "replace"))
    digest.update(b"\x00")
    digest.update(str(schema_version).encode())
    digest.update(b"\x00")
    digest.update(_policy_key(policy).encode("utf-8", "replace"))
    return digest.hexdigest()


class PlanCache:
    """Thread-safe LRU of verified statement ASTs."""

    def __init__(self, maxsize=256):
        self.maxsize = maxsize
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached statement for ``key``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key, statement):
        with self._lock:
            self._entries[key] = statement
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def contains(self, key):
        """Membership test without touching LRU order or hit counters."""
        with self._lock:
            return key in self._entries

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def stats(self):
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._entries), "maxsize": self.maxsize}
