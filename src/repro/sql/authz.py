"""Statement authorization: the engine-layer gate below the Q&A pipeline.

Static verification (:mod:`repro.sql.verify`) answers *"is this SQL
meaningful over the catalog?"*; this module answers *"is this caller
allowed to run it?"*.  An :class:`AuthorizationPolicy` bundles:

* a **read-only statement allowlist** — only SELECT is accepted, checked
  on the raw text before parsing so DDL/DML is refused with a typed
  issue rather than a syntax error;
* **table / column ACLs** — every referenced table must be granted, and
  a table grant may optionally restrict the visible columns;
* **row-limit budgets** — a declared ``LIMIT`` above ``max_limit`` is an
  issue (a repairable one: the Q&A repair loop clamps it), and executed
  results are truncated to ``max_rows`` regardless of what the statement
  asked for;
* **clause-complexity budgets** — joins, predicates, expression depth
  and IN-list length are all bounded so a hostile or confused SQL
  generator cannot submit pathological statements.

Enforcement lives in :meth:`repro.sql.Database.query` (see
``engine.py``): when a policy is attached or passed per call, violations
raise :class:`~repro.sql.engine.SqlAuthzError` *inside the engine*, so
no Q&A backend — however buggy or adversarial — can route around the
gate by producing creative SQL.  Issue codes are split into terminal
(``authz.*``: a different statement is needed, retrying is pointless)
and repairable (``budget.*``: shrink the statement and try again), which
is exactly the signal the Q&A repair loop keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .tokens import SqlSyntaxError, tokenize

__all__ = ["AuthzIssue", "AuthorizationPolicy", "authorize",
           "authorize_sql", "statement_issues", "TERMINAL_PREFIX",
           "BUDGET_PREFIX"]

#: Issue-code prefixes: ``authz.*`` is terminal, ``budget.*`` repairable.
TERMINAL_PREFIX = "authz."
BUDGET_PREFIX = "budget."


@dataclass(frozen=True)
class AuthzIssue:
    """One authorization violation: a typed code plus human message.

    ``detail`` carries machine-readable context (e.g. the budget that was
    exceeded and its cap) so a repair step can fix the statement rather
    than guess.
    """

    code: str
    message: str
    detail: dict = field(default_factory=dict)

    @property
    def terminal(self):
        """True when no rewrite of the same intent can succeed."""
        return self.code.startswith(TERMINAL_PREFIX)

    def __str__(self):
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class AuthorizationPolicy:
    """What a caller may ask of the engine.

    ``tables`` maps granted table names to an optional column allowlist
    (``None`` grants every column).  Budgets are inclusive caps; set a
    budget to ``None`` to disable that check.
    """

    tables: dict = None           # {table: frozenset(columns) | None}
    max_limit: int = 50           # declared LIMIT ceiling (repairable)
    max_rows: int = 200           # executed-result truncation cap
    max_joins: int = 2
    max_predicates: int = 8
    max_expr_depth: int = 16
    max_in_list: int = 12

    def allows_table(self, name):
        return self.tables is None or name.lower() in {
            t.lower() for t in self.tables}

    def allowed_columns(self, name):
        """Column allowlist for a granted table (None = all columns)."""
        if self.tables is None:
            return None
        for table, columns in self.tables.items():
            if table.lower() == name.lower():
                return columns
        return frozenset()

    def describe(self):
        """Human-readable summary (shown in provenance / docs)."""
        tables = "all tables" if self.tables is None else ", ".join(
            sorted(self.tables))
        return (f"read-only SELECT on {tables}; LIMIT<={self.max_limit}, "
                f"rows<={self.max_rows}, joins<={self.max_joins}, "
                f"predicates<={self.max_predicates}, "
                f"depth<={self.max_expr_depth}, "
                f"in-list<={self.max_in_list}")


# -- statement shape helpers -------------------------------------------------

def _first_keyword(sql):
    """Uppercased first token of the statement ('' on lexical garbage)."""
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        # Lexically broken input cannot be classified; let the parser
        # produce its (typed) syntax error downstream.
        return "SELECT"
    if not tokens or tokens[0].kind == "EOF":
        return ""
    head = tokens[0]
    return head.value.upper() if head.kind in ("KW", "IDENT") else ""


def _expr_depth(expr):
    if expr is None:
        return 0
    children = []
    if isinstance(expr, ast.Unary):
        children = [expr.operand]
    elif isinstance(expr, ast.Binary):
        children = [expr.left, expr.right]
    elif isinstance(expr, ast.FuncCall):
        children = list(expr.args)
    elif isinstance(expr, ast.InList):
        children = [expr.operand] + list(expr.items)
    elif isinstance(expr, ast.Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        children = [expr.operand]
        if isinstance(expr, ast.Like):
            children.append(expr.pattern)
    elif isinstance(expr, ast.Case):
        children = [c for pair in expr.branches for c in pair]
        if expr.default is not None:
            children.append(expr.default)
    if not children:
        return 1
    return 1 + max(_expr_depth(c) for c in children)


def _count_predicates(expr):
    """Comparison-ish leaves in a boolean expression tree."""
    if expr is None:
        return 0
    if isinstance(expr, ast.Binary):
        if expr.op in ("AND", "OR"):
            return _count_predicates(expr.left) \
                + _count_predicates(expr.right)
        return 1
    if isinstance(expr, (ast.InList, ast.Between, ast.Like, ast.IsNull)):
        return 1
    if isinstance(expr, ast.Unary):
        return _count_predicates(expr.operand)
    return 1


def _walk_in_lists(expr, out):
    if expr is None:
        return
    if isinstance(expr, ast.InList):
        out.append(expr)
        _walk_in_lists(expr.operand, out)
        for item in expr.items:
            _walk_in_lists(item, out)
    elif isinstance(expr, ast.Unary):
        _walk_in_lists(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _walk_in_lists(expr.left, out)
        _walk_in_lists(expr.right, out)
    elif isinstance(expr, ast.FuncCall):
        for a in expr.args:
            _walk_in_lists(a, out)
    elif isinstance(expr, ast.Between):
        for e in (expr.operand, expr.low, expr.high):
            _walk_in_lists(e, out)
    elif isinstance(expr, (ast.IsNull, ast.Like)):
        _walk_in_lists(expr.operand, out)
        if isinstance(expr, ast.Like):
            _walk_in_lists(expr.pattern, out)
    elif isinstance(expr, ast.Case):
        for cond, value in expr.branches:
            _walk_in_lists(cond, out)
            _walk_in_lists(value, out)
        if expr.default is not None:
            _walk_in_lists(expr.default, out)


def _collect_columns(select):
    """Every :class:`ast.Column` reference across all statement scopes.

    Alias references are honoured only where the executor honours them —
    a bare ORDER BY column whose name matches a select-item alias sorts
    on the output value, so its source columns were already checked via
    the aliased expression.  Everywhere else (select items, WHERE, JOIN,
    GROUP BY, HAVING) a name matching an alias still resolves against
    the tables at runtime, so it is collected and checked like any other
    column.
    """
    from .verify import _walk_columns

    columns = []
    scopes = [i.expr for i in select.items
              if not isinstance(i.expr, ast.Star)]
    scopes += [j.condition for j in select.joins]
    for clause in (select.where, select.having):
        if clause is not None:
            scopes.append(clause)
    scopes += list(select.group_by)
    aliases = {i.alias for i in select.items if i.alias}
    for order in select.order_by:
        expr = order.expr
        if isinstance(expr, ast.Column) and not expr.table \
                and expr.name in aliases:
            continue  # alias-in-ORDER-BY: sorts on the output row
        scopes.append(expr)
    for expr in scopes:
        _walk_columns(expr, columns.append)
    return columns, scopes


def _table_has_column(table, name):
    try:
        table.column_index(name)
    except Exception:
        return False
    return True


def authorize(select, policy, catalog=None):
    """Check a parsed SELECT against a policy; returns AuthzIssue list.

    With a ``catalog``, ``SELECT *`` is expanded to the actual columns
    and unqualified columns are resolved to the table that owns them, so
    column ACLs hold exactly as they would for fully-qualified SQL.
    Without one the checks stay conservative: a star over a
    column-restricted table is refused outright, and an unqualified
    column must be visible in *every* referenced restricted table.
    """
    issues = []
    refs = ([] if select.table is None else [select.table]) \
        + [j.table for j in select.joins]
    binding_to_table = {}
    for ref in refs:
        binding_to_table[ref.binding.lower()] = ref.name
        if not policy.allows_table(ref.name):
            issues.append(AuthzIssue(
                "authz.table",
                f"table {ref.name!r} is not authorized for this caller",
                {"table": ref.name}))

    # SELECT * reads every column of the tables it expands over, so a
    # star over a column-restricted grant must be checked column by
    # column (or refused when the catalog is unavailable).
    star_targets = []
    for item in select.items:
        if not isinstance(item.expr, ast.Star):
            continue
        if item.expr.table:
            name = binding_to_table.get(item.expr.table.lower())
            star_targets += [] if name is None else [name]
        else:
            star_targets += [ref.name for ref in refs]
    for name in dict.fromkeys(star_targets):
        if not policy.allows_table(name):
            continue  # authz.table already reported
        allowed = policy.allowed_columns(name)
        if allowed is None:
            continue
        allowed_lower = {c.lower() for c in allowed}
        if catalog is not None and catalog.has(name):
            for col in catalog.get(name).columns:
                if col.name.lower() not in allowed_lower:
                    issues.append(AuthzIssue(
                        "authz.column",
                        f"column {name}.{col.name} is not authorized "
                        "(via SELECT *)",
                        {"table": name, "column": col.name, "star": True}))
        else:
            issues.append(AuthzIssue(
                "authz.column",
                f"SELECT * over column-restricted table {name!r} is not "
                "authorized; name the granted columns explicitly",
                {"table": name, "star": True}))

    columns, scopes = _collect_columns(select)
    for column in columns:
        if column.table:
            table = binding_to_table.get(column.table.lower())
            if table is None or not policy.allows_table(table):
                continue  # unknown binding already failed verification
            allowed = policy.allowed_columns(table)
            if allowed is not None and column.name.lower() not in {
                    c.lower() for c in allowed}:
                issues.append(AuthzIssue(
                    "authz.column",
                    f"column {table}.{column.name} is not authorized",
                    {"table": table, "column": column.name}))
        else:
            candidates = [ref.name for ref in refs
                          if policy.allows_table(ref.name)]
            if catalog is not None:
                owners = [name for name in candidates if catalog.has(name)
                          and _table_has_column(catalog.get(name),
                                                column.name)]
                if owners:
                    candidates = owners
            blockers = []
            for name in dict.fromkeys(candidates):
                allowed = policy.allowed_columns(name)
                if allowed is not None and column.name.lower() not in {
                        c.lower() for c in allowed}:
                    blockers.append(name)
            if blockers:
                issues.append(AuthzIssue(
                    "authz.column",
                    f"column {column.name!r} is not authorized "
                    f"(table {blockers[0]!r})",
                    {"column": column.name, "table": blockers[0]}))

    if policy.max_joins is not None and len(select.joins) > policy.max_joins:
        issues.append(AuthzIssue(
            "budget.complexity",
            f"{len(select.joins)} joins exceed the budget of "
            f"{policy.max_joins}",
            {"joins": len(select.joins), "max_joins": policy.max_joins}))

    if policy.max_predicates is not None:
        predicates = _count_predicates(select.where) \
            + _count_predicates(select.having) \
            + sum(_count_predicates(j.condition) for j in select.joins)
        if predicates > policy.max_predicates:
            issues.append(AuthzIssue(
                "budget.complexity",
                f"{predicates} predicates exceed the budget of "
                f"{policy.max_predicates}",
                {"predicates": predicates,
                 "max_predicates": policy.max_predicates}))

    if policy.max_expr_depth is not None:
        depth = max((_expr_depth(e) for e in scopes), default=0)
        if depth > policy.max_expr_depth:
            issues.append(AuthzIssue(
                "budget.complexity",
                f"expression depth {depth} exceeds the budget of "
                f"{policy.max_expr_depth}",
                {"depth": depth, "max_depth": policy.max_expr_depth}))

    if policy.max_in_list is not None:
        in_lists = []
        for expr in scopes:
            _walk_in_lists(expr, in_lists)
        for node in in_lists:
            if len(node.items) > policy.max_in_list:
                issues.append(AuthzIssue(
                    "budget.complexity",
                    f"IN list of {len(node.items)} items exceeds the "
                    f"budget of {policy.max_in_list}",
                    {"in_list": len(node.items),
                     "max_in_list": policy.max_in_list}))

    if policy.max_limit is not None and select.limit is not None \
            and select.limit > policy.max_limit:
        issues.append(AuthzIssue(
            "budget.rows",
            f"LIMIT {select.limit} exceeds the budget of "
            f"{policy.max_limit}",
            {"limit": select.limit, "max_limit": policy.max_limit}))
    return issues


def statement_issues(sql):
    """Read-only allowlist check on the raw text (cheap, pre-parse)."""
    head = _first_keyword(sql)
    if head and head != "SELECT":
        return [AuthzIssue(
            "authz.statement",
            f"{head} statements are not allowed (read-only SELECT policy)",
            {"statement": head})]
    return []


def authorize_sql(sql, policy, catalog=None):
    """Text-level authorization: statement allowlist, then AST checks.

    Returns a list of :class:`AuthzIssue`; parse failures yield no
    issues here (the verifier owns syntax reporting).  Pass the catalog
    when available — it lets column ACLs resolve ``SELECT *`` and
    unqualified columns precisely instead of conservatively.
    """
    gate = statement_issues(sql)
    if gate:
        return gate
    from .parser import parse
    try:
        select = parse(sql)
    except SqlSyntaxError:
        return []
    return authorize(select, policy, catalog)
