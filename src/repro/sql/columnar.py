"""Vectorized columnar executor for the embedded SQL engine.

Executes a parsed SELECT as numpy operations over whole column batches
instead of per-row Python evaluation: boolean-mask filters, factorize-
based hash aggregation, argsort/lexsort ordering and index-vector hash
joins.  The statistics layer (:mod:`.stats`) drives zone-map chunk
pruning on scans and cardinality-ordered join sequencing
(:func:`.planner.order_joins`); join reordering is purely physical —
the output is canonically re-sorted to the reference row order — so
results are bit-identical to :func:`.executor.execute_reference`.

**Exactness contract**: any construct whose vectorized semantics could
diverge from the row engine (mixed-type arithmetic, non-literal LIKE
patterns, value-dependent errors, …) raises :class:`ColumnarUnsupported`
and the dispatcher in :mod:`.executor` falls back to the reference
engine, which is the canonical semantics.  The supported surface —
typed-column filters, projections, scalar functions, aggregates,
GROUP BY/HAVING, ORDER BY/LIMIT, DISTINCT and INNER/LEFT equi joins —
covers the whole Q&A workload and is differential-tested against the
reference engine.
"""

from __future__ import annotations

import numpy as np

from . import ast
from .expr import Resolver, SqlRuntimeError, like_to_regex
from .planner import (build_plan, collect_aggregates, contains_aggregate,
                      equi_join_slots, order_joins, prune_chunks)

__all__ = ["ColumnarUnsupported", "execute_columnar"]

_NUMERIC = ("int", "float")


class ColumnarUnsupported(Exception):
    """Raised when a statement needs the reference row engine."""


# ---------------------------------------------------------------------------
# Vector values
# ---------------------------------------------------------------------------

class Vec:
    """A column of values: numpy array + null mask + a semantic kind.

    ``kind`` is one of ``int``/``float``/``bool``/``text``/``object``;
    it tracks python-level semantics through expression evaluation so
    that materialised results carry exactly the types the row engine
    would produce.
    """

    __slots__ = ("values", "mask", "kind")

    def __init__(self, values, mask, kind):
        self.values = values
        self.mask = mask
        self.kind = kind

    def __len__(self):
        return len(self.values)

    def take(self, positions):
        return Vec(self.values[positions], self.mask[positions], self.kind)

    def to_pylist(self):
        """Python values with None for nulls (type-exact)."""
        out = self.values.tolist()
        if self.mask.any():
            for i in np.flatnonzero(self.mask):
                out[i] = None
        return out


class Const:
    """A scalar constant (not broadcast until needed)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _const_kind(value):
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "text"
    raise ColumnarUnsupported(f"constant of type {type(value).__name__}")


def _kind_of(v):
    return _const_kind(v.value) if isinstance(v, Const) else v.kind


def _broadcast(v, n):
    """Materialise a Const into a Vec of length n."""
    if isinstance(v, Vec):
        return v
    value = v.value
    kind = _const_kind(value)
    if kind == "null":
        return Vec(np.zeros(n, dtype=np.float64), np.ones(n, dtype=bool),
                   "float")
    mask = np.zeros(n, dtype=bool)
    if kind == "int":
        try:
            values = np.full(n, value, dtype=np.int64)
        except OverflowError:
            values = np.full(n, value, dtype=object)
            return Vec(values, mask, "object")
        return Vec(values, mask, "int")
    if kind == "float":
        return Vec(np.full(n, value, dtype=np.float64), mask, "float")
    if kind == "bool":
        return Vec(np.full(n, value, dtype=bool), mask, "bool")
    values = np.empty(n, dtype=object)
    values[:] = value
    return Vec(values, mask, "text")


def _batch_to_vec(batch):
    kind = {"INT": "int", "FLOAT": "float", "BOOL": "bool",
            "TEXT": "text"}[batch.type]
    if batch.values.dtype == object and kind != "text":
        kind = "object"     # e.g. INT column with int64-overflow values
    return Vec(batch.values, batch.mask, kind)


# ---------------------------------------------------------------------------
# Row / group contexts
# ---------------------------------------------------------------------------

class RowContext:
    """Column access over a (filtered, joined) set of rows.

    ``index_map`` maps binding name to an int index array into its
    table's storage (``-1`` = NULL-extended left-join slot), or None for
    the identity over a single unfiltered base scan.
    """

    def __init__(self, tables, index_map, length, aggregates=None):
        self.tables = tables            # {binding: Table}
        self.index_map = index_map      # {binding: ndarray | None}
        self.length = length
        self.aggregates = aggregates or {}
        self._cache = {}

    def column(self, binding, col_index):
        key = (binding, col_index)
        vec = self._cache.get(key)
        if vec is not None:
            return vec
        batch = self.tables[binding].batch(col_index)
        idx = self.index_map[binding]
        vec = _batch_to_vec(batch if idx is None else batch.take(idx))
        self._cache[key] = vec
        return vec

    def subset(self, positions):
        index_map = {}
        for binding, idx in self.index_map.items():
            index_map[binding] = positions.copy() if idx is None \
                else idx[positions]
        return RowContext(self.tables, index_map, len(positions))


class EmptyGroupContext:
    """Representative context for the zero-row global aggregate group."""

    def __init__(self, aggregates):
        self.length = 1
        self.aggregates = aggregates

    def column(self, binding, col_index):
        return Vec(np.zeros(1, dtype=np.float64), np.ones(1, dtype=bool),
                   "float")


# ---------------------------------------------------------------------------
# Expression evaluation (vectorized)
# ---------------------------------------------------------------------------

def _evaluate(expr, ctx, resolver):
    """Evaluate an expression over a context; returns Vec or Const."""
    if isinstance(expr, ast.Literal):
        _const_kind(expr.value)     # reject exotic literal types early
        return Const(expr.value)
    if isinstance(expr, ast.Column):
        binding, index = resolver.resolve(expr)
        return ctx.column(binding, index)
    if isinstance(expr, ast.Unary):
        return _unary(expr, ctx, resolver)
    if isinstance(expr, ast.Binary):
        return _binary(expr, ctx, resolver)
    if isinstance(expr, ast.InList):
        return _in_list(expr, ctx, resolver)
    if isinstance(expr, ast.Between):
        return _between(expr, ctx, resolver)
    if isinstance(expr, ast.IsNull):
        return _is_null(expr, ctx, resolver)
    if isinstance(expr, ast.Like):
        return _like(expr, ctx, resolver)
    if isinstance(expr, ast.Case):
        return _case(expr, ctx, resolver)
    if isinstance(expr, ast.FuncCall):
        if expr.is_aggregate:
            vec = ctx.aggregates.get(id(expr))
            if vec is None:
                raise ColumnarUnsupported(
                    f"aggregate {expr.name} outside a grouped context")
            return vec
        return _scalar_fn(expr, ctx, resolver)
    raise ColumnarUnsupported(f"cannot vectorize {type(expr).__name__}")


def _truthy(v, n):
    """(true_mask, null_mask) under SQL filter semantics."""
    if isinstance(v, Const):
        value = v.value
        if value is None:
            return (np.zeros(n, dtype=bool), np.ones(n, dtype=bool))
        flag = bool(value)
        return (np.full(n, flag, dtype=bool), np.zeros(n, dtype=bool))
    if v.kind == "bool":
        return (v.values & ~v.mask, v.mask)
    if v.kind in _NUMERIC:
        return ((v.values != 0) & ~v.mask, v.mask)
    if v.kind == "text":
        truth = np.fromiter((bool(x) for x in v.values), dtype=bool,
                            count=len(v))
        return (truth & ~v.mask, v.mask)
    raise ColumnarUnsupported("truthiness of mixed-type values")


def _unary(expr, ctx, resolver):
    v = _evaluate(expr.operand, ctx, resolver)
    if expr.op == "-":
        kind = _kind_of(v)
        if kind == "null":
            return Const(None)
        if kind not in _NUMERIC:
            raise ColumnarUnsupported("unary minus on non-numeric")
        if isinstance(v, Const):
            return Const(-v.value)
        return Vec(-v.values, v.mask, v.kind)
    if expr.op == "NOT":
        if isinstance(v, Const):
            if v.value is None:
                return Const(None)
            return Const(not bool(v.value))
        true, null = _truthy(v, len(v))
        return Vec(~true & ~null, null.copy(), "bool")
    raise ColumnarUnsupported(f"unary operator {expr.op!r}")


_ARITH_OPS = ("+", "-", "*", "/", "%")
_CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


def _binary(expr, ctx, resolver):
    if expr.op in ("AND", "OR"):
        return _logical(expr, ctx, resolver)
    left = _evaluate(expr.left, ctx, resolver)
    right = _evaluate(expr.right, ctx, resolver)
    if expr.op in _CMP_OPS:
        return _compare(expr.op, left, right, ctx.length)
    if expr.op in _ARITH_OPS:
        return _arith(expr.op, left, right, ctx.length)
    raise ColumnarUnsupported(f"operator {expr.op!r}")


def _logical(expr, ctx, resolver):
    left = _evaluate(expr.left, ctx, resolver)
    right = _evaluate(expr.right, ctx, resolver)
    n = ctx.length
    lt, ln = _truthy(left, n)
    rt, rn = _truthy(right, n)
    if expr.op == "AND":
        false = (~lt & ~ln) | (~rt & ~rn)
        null = ~false & (ln | rn)
        return Vec(lt & rt, null, "bool")
    true = lt | rt
    null = ~true & (ln | rn)
    return Vec(true, null, "bool")


def _numeric_like(kind):
    return kind in _NUMERIC


def _compare(op, left, right, n):
    lk, rk = _kind_of(left), _kind_of(right)
    if lk == "null" or rk == "null":
        return Const(None)
    if isinstance(left, Const) and isinstance(right, Const):
        from .expr import _compare as row_compare
        try:
            return Const(row_compare(op, left.value, right.value))
        except SqlRuntimeError:
            # The row engine raises per evaluated row (so not at all on
            # an empty input) — let it decide.
            raise ColumnarUnsupported("constant comparison error")
    num_l, num_r = _numeric_like(lk), _numeric_like(rk)
    if num_l != num_r and op not in ("=", "!="):
        # The row engine raises for evaluated rows; semantics depend on
        # which rows get evaluated, so defer to the reference engine.
        raise ColumnarUnsupported("ordered comparison across type classes")
    if lk == "object" or rk == "object":
        raise ColumnarUnsupported("comparison over mixed-type values")
    if {lk, rk} == {"bool", "text"} and op not in ("=", "!="):
        raise ColumnarUnsupported("ordered comparison across type classes")
    lv = _broadcast(left, n)
    rv = _broadcast(right, n)
    mask = lv.mask | rv.mask
    # Cross-class equality is python ==: always False between text and
    # numbers/bools (bool-vs-number compares numerically, as python does).
    classes = {"text" if k == "text" else "num" for k in (lk, rk)}
    if len(classes) == 2:
        values = np.zeros(n, dtype=bool) if op == "=" \
            else np.ones(n, dtype=bool)
        return Vec(values, mask, "bool")
    lvals, rvals = lv.values, rv.values
    # TEXT batches hold None in null slots; object-dtype comparisons
    # would choke on them, so substitute a harmless filler (the result
    # at those positions is masked anyway).
    if lvals.dtype == object and lv.mask.any():
        lvals = lvals.copy()
        lvals[lv.mask] = ""
    if rvals.dtype == object and rv.mask.any():
        rvals = rvals.copy()
        rvals[rv.mask] = ""
    with np.errstate(invalid="ignore"):
        if op == "=":
            values = np.equal(lvals, rvals)
        elif op == "!=":
            values = np.not_equal(lvals, rvals)
        elif op == "<":
            values = np.less(lvals, rvals)
        elif op == "<=":
            values = np.less_equal(lvals, rvals)
        elif op == ">":
            values = np.greater(lvals, rvals)
        else:
            values = np.greater_equal(lvals, rvals)
    values = np.asarray(values, dtype=bool)
    return Vec(values, mask, "bool")


def _arith(op, left, right, n):
    lk, rk = _kind_of(left), _kind_of(right)
    if lk == "null" or rk == "null":
        return Const(None)
    if isinstance(left, Const) and isinstance(right, Const):
        from .expr import _arith as row_arith
        try:
            return Const(row_arith(op, left.value, right.value))
        except SqlRuntimeError:
            raise ColumnarUnsupported("constant arithmetic error")
    for k in (lk, rk):
        if k not in _NUMERIC:
            # bool/text operands raise in the row engine for evaluated
            # rows — value-dependent, so defer to the reference engine.
            raise ColumnarUnsupported(f"arithmetic on {k} values")
    lv = _broadcast(left, n)
    rv = _broadcast(right, n)
    mask = lv.mask | rv.mask
    kind = "int" if lk == "int" and rk == "int" else "float"
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if op == "+":
            values = lv.values + rv.values
        elif op == "-":
            values = lv.values - rv.values
        elif op == "*":
            values = lv.values * rv.values
        elif op == "/":
            zero = (rv.values == 0) & ~rv.mask
            divisor = np.where(zero, 1, rv.values)
            values = np.true_divide(lv.values, divisor)
            mask = mask | zero
            kind = "float"
        else:   # %
            zero = (rv.values == 0) & ~rv.mask
            divisor = np.where(zero, 1, rv.values)
            values = np.mod(lv.values, divisor)
            mask = mask | zero
    return Vec(values, mask, kind)


def _in_list(expr, ctx, resolver):
    value = _evaluate(expr.operand, ctx, resolver)
    items = []
    for item in expr.items:
        ev = _evaluate(item, ctx, resolver)
        if not isinstance(ev, Const):
            raise ColumnarUnsupported("non-constant IN list")
        items.append(ev.value)
    if isinstance(value, Const):
        if value.value is None:
            return Const(None)
        from .expr import _compare as row_compare
        found = any(c is not None and row_compare("=", value.value, c)
                    for c in items)
        return Const((not found) if expr.negated else found)
    n = ctx.length
    found = np.zeros(n, dtype=bool)
    for c in items:
        if c is None:
            continue
        hit = _compare("=", value, Const(c), n)
        hit = _broadcast(hit, n)
        found |= hit.values & ~hit.mask
    values = ~found if expr.negated else found
    return Vec(values, value.mask.copy(), "bool")


def _between(expr, ctx, resolver):
    value = _evaluate(expr.operand, ctx, resolver)
    low = _evaluate(expr.low, ctx, resolver)
    high = _evaluate(expr.high, ctx, resolver)
    if any(_kind_of(v) == "null" for v in (value, low, high)):
        return Const(None)
    n = ctx.length
    ge = _compare(">=", value, low, n)
    le = _compare("<=", value, high, n)
    if isinstance(ge, Const) and isinstance(le, Const):
        inside = bool(ge.value) and bool(le.value)
        return Const((not inside) if expr.negated else inside)
    ge = _broadcast(ge, n)
    le = _broadcast(le, n)
    mask = ge.mask | le.mask
    inside = ge.values & le.values & ~mask
    values = ~inside & ~mask if expr.negated else inside
    return Vec(values, mask, "bool")


def _is_null(expr, ctx, resolver):
    v = _evaluate(expr.operand, ctx, resolver)
    if isinstance(v, Const):
        null = v.value is None
        return Const((not null) if expr.negated else null)
    values = ~v.mask if expr.negated else v.mask.copy()
    return Vec(values, np.zeros(len(v), dtype=bool), "bool")


def _like(expr, ctx, resolver):
    value = _evaluate(expr.operand, ctx, resolver)
    pattern = _evaluate(expr.pattern, ctx, resolver)
    if not isinstance(pattern, Const):
        raise ColumnarUnsupported("non-constant LIKE pattern")
    if pattern.value is None:
        return Const(None)
    regex = like_to_regex(str(pattern.value))
    if isinstance(value, Const):
        if value.value is None:
            return Const(None)
        matched = bool(regex.match(str(value.value)))
        return Const((not matched) if expr.negated else matched)
    n = len(value)
    out = np.zeros(n, dtype=bool)
    vals = value.values
    mask = value.mask
    for i in range(n):
        if not mask[i]:
            out[i] = regex.match(str(vals[i])) is not None
    if expr.negated:
        out = ~out & ~mask
    return Vec(out, mask.copy(), "bool")


def _merge_branches(parts, n):
    """Merge (selected_mask, Vec/Const) branches into one Vec.

    ``parts`` covers disjoint row sets; uncovered rows are NULL.  When
    all branches share a kind the result stays typed; otherwise values
    are merged as python objects so e.g. a CASE mixing INT and FLOAT
    arms keeps per-row python types exactly like the row engine.
    """
    kinds = {_kind_of(v) for _, v in parts if _kind_of(v) != "null"}
    null_mask = np.ones(n, dtype=bool)
    if not kinds:
        return Vec(np.zeros(n, dtype=np.float64), null_mask, "float")
    if len(kinds) == 1:
        kind = next(iter(kinds))
        first = _broadcast(parts[0][1], n)
        values = first.values.copy()
        for selected, v in parts:
            bv = _broadcast(v, n)
            values[selected] = bv.values[selected]
            null_mask[selected] = bv.mask[selected]
        return Vec(values, null_mask, kind)
    values = np.empty(n, dtype=object)
    for selected, v in parts:
        bv = _broadcast(v, n)
        lst = bv.to_pylist()
        for i in np.flatnonzero(selected):
            values[i] = lst[i]
        null_mask[selected] = bv.mask[selected]
    return Vec(values, null_mask, "object")


def _case(expr, ctx, resolver):
    n = ctx.length
    remaining = np.ones(n, dtype=bool)
    parts = []
    for cond, result in expr.branches:
        cv = _evaluate(cond, ctx, resolver)
        true, _ = _truthy(cv, n)
        selected = true & remaining
        remaining = remaining & ~selected
        if selected.any():
            parts.append((selected, _evaluate(result, ctx, resolver)))
    if expr.default is not None and remaining.any():
        parts.append((remaining, _evaluate(expr.default, ctx, resolver)))
    if not parts:
        return Const(None)
    return _merge_branches(parts, n)


def _scalar_fn(expr, ctx, resolver):
    name = expr.name
    args = [_evaluate(a, ctx, resolver) for a in expr.args]
    n = ctx.length
    if name == "COALESCE":
        parts = []
        remaining = np.ones(n, dtype=bool)
        for a in args:
            if isinstance(a, Const):
                if a.value is None:
                    continue
                if remaining.any():
                    parts.append((remaining.copy(), a))
                remaining[:] = False
                break
            selected = remaining & ~a.mask
            if selected.any():
                parts.append((selected, a))
            remaining = remaining & a.mask
        if not parts:
            return Const(None)
        return _merge_branches(parts, n)
    if not args:
        raise ColumnarUnsupported(f"function {name}() with no arguments")
    v = args[0]
    if name in ("UPPER", "LOWER", "LENGTH"):
        if isinstance(v, Const):
            if v.value is None:
                return Const(None)
            s = str(v.value)
            return Const(s.upper() if name == "UPPER"
                         else s.lower() if name == "LOWER" else len(s))
        out = np.empty(n, dtype=object)
        any_val = False
        for i in range(n):
            if v.mask[i]:
                continue
            s = str(v.values[i])
            out[i] = s.upper() if name == "UPPER" \
                else s.lower() if name == "LOWER" else len(s)
            any_val = True
        kind = "int" if name == "LENGTH" else "text"
        if name == "LENGTH" and any_val:
            lengths = np.fromiter(
                (out[i] if not v.mask[i] else 0 for i in range(n)),
                dtype=np.int64, count=n)
            return Vec(lengths, v.mask.copy(), "int")
        return Vec(out, v.mask.copy(), kind)
    if name == "ABS":
        kind = _kind_of(v)
        if kind == "null":
            return Const(None)
        if kind not in _NUMERIC:
            raise ColumnarUnsupported("ABS on non-numeric")
        if isinstance(v, Const):
            return Const(abs(v.value))
        return Vec(np.abs(v.values), v.mask.copy(), v.kind)
    if name == "SQRT":
        kind = _kind_of(v)
        if kind == "null":
            return Const(None)
        if kind not in _NUMERIC:
            raise ColumnarUnsupported("SQRT on non-numeric")
        if isinstance(v, Const):
            if v.value < 0:
                raise ColumnarUnsupported("SQRT of a negative number")
            import math
            return Const(math.sqrt(v.value))
        if ((v.values < 0) & ~v.mask).any():
            # The row engine raises only for rows it actually evaluates.
            raise ColumnarUnsupported("SQRT of a negative number")
        return Vec(np.sqrt(v.values.astype(np.float64)), v.mask.copy(),
                   "float")
    if name == "ROUND":
        digits = 0
        if len(args) > 1:
            if not isinstance(args[1], Const) or args[1].value is None:
                raise ColumnarUnsupported("non-constant ROUND digits")
            digits = int(args[1].value)
        kind = _kind_of(v)
        if kind == "null":
            return Const(None)
        if kind not in _NUMERIC:
            raise ColumnarUnsupported("ROUND on non-numeric")
        if isinstance(v, Const):
            return Const(round(v.value, digits))
        # Python round() is correctly rounded; numpy's scale-multiply
        # round can differ on ties, so stay with the python builtin.
        out_list = [round(x, digits) for x in v.values.tolist()]
        if kind == "int":
            values = np.asarray(out_list, dtype=np.int64)
            return Vec(values, v.mask.copy(), "int")
        values = np.asarray(out_list, dtype=np.float64)
        return Vec(values, v.mask.copy(), "float")
    raise ColumnarUnsupported(f"function {name!r}")


# ---------------------------------------------------------------------------
# Factorization (python-equality group codes)
# ---------------------------------------------------------------------------

def _factorize(vec, n):
    """``(codes, size)``: int codes under python equality; nulls get a
    dedicated code."""
    v = _broadcast(vec, n)
    values, mask = v.values, v.mask
    if v.kind in ("int", "float", "bool"):
        u, inv = np.unique(values, return_inverse=True)
        codes = inv.astype(np.int64)
        codes[mask] = len(u)
        return codes, len(u) + 1
    if v.kind == "text":
        tmp = values.copy()
        tmp[mask] = ""
        try:
            u, inv = np.unique(tmp.astype(str), return_inverse=True)
        except (TypeError, ValueError):
            return _factorize_object(values, mask)
        codes = inv.astype(np.int64)
        codes[mask] = len(u)
        return codes, len(u) + 1
    return _factorize_object(values, mask)


def _factorize_object(values, mask):
    codes = np.empty(len(values), dtype=np.int64)
    table = {}
    for i, value in enumerate(values.tolist()):
        if mask[i]:
            codes[i] = -1
            continue
        code = table.get(value)
        if code is None:
            code = len(table)
            table[value] = code
        codes[i] = code
    null_code = len(table)
    codes[codes < 0] = null_code
    return codes, null_code + 1


_CODE_LIMIT = 1 << 62


def _combine_codes(code_list, size_list, n):
    codes = code_list[0]
    size = size_list[0]
    for ck, sk in zip(code_list[1:], size_list[1:]):
        if size * sk > _CODE_LIMIT:
            u, inv = np.unique(codes, return_inverse=True)
            codes = inv.astype(np.int64)
            size = len(u)
            if size * sk > _CODE_LIMIT:
                raise ColumnarUnsupported("group key space too large")
        codes = codes * sk + ck
        size = size * sk
    return codes


def _group_codes(key_vecs, n):
    """First-appearance-ordered group codes.

    Returns ``(gcodes, n_groups, rep_positions)`` where ``gcodes[i]`` is
    the group index of row i and ``rep_positions`` the first row of each
    group — matching the row engine's dict-insertion group order.
    """
    if not key_vecs:
        return np.zeros(n, dtype=np.int64), (1 if n else 0), \
            np.zeros(min(n, 1), dtype=np.int64)
    code_list, size_list = [], []
    for vec in key_vecs:
        codes, size = _factorize(vec, n)
        code_list.append(codes)
        size_list.append(size)
    codes = _combine_codes(code_list, size_list, n)
    uniq, first_idx, inv = np.unique(codes, return_index=True,
                                     return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[order] = np.arange(len(uniq))
    return rank[inv.astype(np.int64)], len(uniq), first_idx[order]


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _segment_reduce(values, gcodes, n_groups, how):
    """Per-group sum/min/max; returns (result_array, present_mask)."""
    present = np.zeros(n_groups, dtype=bool)
    if len(values) == 0:
        fill = np.zeros(n_groups, dtype=values.dtype) \
            if values.dtype != object else np.empty(n_groups, dtype=object)
        return fill, present
    order = np.argsort(gcodes, kind="stable")
    sg = gcodes[order]
    sv = values[order]
    starts = np.flatnonzero(np.r_[True, sg[1:] != sg[:-1]])
    groups_present = sg[starts]
    ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[how]
    try:
        reduced = ufunc.reduceat(sv, starts)
    except TypeError:
        # object dtype without a ufunc loop: python per-segment fallback
        bounds = list(starts) + [len(sv)]
        chunks = [sv[bounds[k]:bounds[k + 1]].tolist()
                  for k in range(len(starts))]
        fn = {"sum": sum, "min": min, "max": max}[how]
        reduced = np.empty(len(starts), dtype=object)
        for k, chunk in enumerate(chunks):
            reduced[k] = fn(chunk)
    out = np.zeros(n_groups, dtype=reduced.dtype) \
        if reduced.dtype != object else np.empty(n_groups, dtype=object)
    out[groups_present] = reduced
    present[groups_present] = True
    return out, present


def _distinct_positions(arg_vec, gcodes, valid, n):
    """Positions of the first occurrence of each (group, value) pair."""
    vcodes, vsize = _factorize(arg_vec, n)
    pair = _combine_codes([gcodes, vcodes],
                          [int(gcodes.max()) + 1 if len(gcodes) else 1,
                           vsize], n)
    positions = np.flatnonzero(valid)
    sub = pair[positions]
    _, first = np.unique(sub, return_index=True)
    keep = positions[np.sort(first)]
    return keep


def _aggregate(agg, row_ctx, resolver, gcodes, n_groups):
    """One aggregate node over grouped rows; returns a Vec of length G."""
    n = row_ctx.length
    if agg.name == "COUNT" and agg.args \
            and isinstance(agg.args[0], ast.Star):
        counts = np.bincount(gcodes, minlength=n_groups) if n else \
            np.zeros(n_groups, dtype=np.int64)
        return Vec(counts.astype(np.int64),
                   np.zeros(n_groups, dtype=bool), "int")
    if not agg.args:
        raise SqlRuntimeError(f"{agg.name} requires an argument")
    arg = _evaluate(agg.args[0], row_ctx, resolver)
    arg = _broadcast(arg, n)
    valid = ~arg.mask
    codes = gcodes
    values = arg.values
    if agg.distinct:
        keep = _distinct_positions(arg, gcodes, valid, n)
        codes = gcodes[keep]
        values = arg.values[keep]
        valid = np.ones(len(keep), dtype=bool)
    vcodes = codes[valid]
    vvalues = values[valid]
    if agg.name == "COUNT":
        counts = np.bincount(vcodes, minlength=n_groups) if len(vcodes) \
            else np.zeros(n_groups, dtype=np.int64)
        return Vec(counts.astype(np.int64),
                   np.zeros(n_groups, dtype=bool), "int")
    if arg.kind == "object":
        raise ColumnarUnsupported("aggregate over mixed-type values")
    if agg.name in ("SUM", "AVG"):
        if arg.kind == "text":
            raise ColumnarUnsupported(f"{agg.name} over text values")
        if arg.kind == "bool":
            vvalues = vvalues.astype(np.int64)
        if agg.name == "AVG":
            sums, present = _segment_reduce(
                vvalues.astype(np.float64), vcodes, n_groups, "sum")
            counts = np.bincount(vcodes, minlength=n_groups) \
                if len(vcodes) else np.zeros(n_groups, dtype=np.int64)
            with np.errstate(invalid="ignore", divide="ignore"):
                out = sums / np.where(counts == 0, 1, counts)
            return Vec(out, ~present, "float")
        sums, present = _segment_reduce(vvalues, vcodes, n_groups, "sum")
        kind = "int" if vvalues.dtype == np.int64 else "float"
        return Vec(sums, ~present, kind)
    if agg.name in ("MIN", "MAX"):
        how = "min" if agg.name == "MIN" else "max"
        if arg.kind == "text":
            out, present = _segment_reduce(vvalues, vcodes, n_groups, how)
            return Vec(out, ~present, "text")
        out, present = _segment_reduce(vvalues, vcodes, n_groups, how)
        return Vec(out, ~present, arg.kind)
    raise SqlRuntimeError(f"unknown aggregate {agg.name!r}")


# ---------------------------------------------------------------------------
# Scan + join execution
# ---------------------------------------------------------------------------

def _scan_positions(binding, table, filters, resolver, info):
    """Row positions surviving pushed-down filters (+ zone-map pruning)."""
    n = len(table)
    info["batch_rows"] += n
    if not filters:
        return None     # identity scan
    chunks, pruned, total = prune_chunks(table, binding, filters, resolver)
    if chunks is None:
        candidates = None
        length = n
    else:
        info["chunks_pruned"] += pruned
        info["chunks_total"] += total
        from .stats import CHUNK_ROWS
        ranges = [np.arange(c * CHUNK_ROWS, min((c + 1) * CHUNK_ROWS, n))
                  for c in chunks]
        candidates = np.concatenate(ranges) if ranges else \
            np.empty(0, dtype=np.int64)
        length = len(candidates)
    ctx = RowContext({binding: table}, {binding: candidates}, length)
    keep = np.ones(length, dtype=bool)
    for conjunct in filters:
        v = _evaluate(conjunct, ctx, resolver)
        true, _ = _truthy(v, length)
        keep &= true
    selected = np.flatnonzero(keep)
    if candidates is not None:
        return candidates[selected]
    return selected


class _JoinState:
    """Per-binding index vectors over the accumulating join result."""

    def __init__(self, tables):
        self.tables = tables
        self.index = {}
        self.length = 0

    def context(self):
        return RowContext(self.tables, dict(self.index), self.length)

    def apply(self, positions):
        for binding in self.index:
            self.index[binding] = self.index[binding][positions]
        self.length = len(positions)


def _join_step(state, binding, table, kind, condition, right_positions,
               resolver):
    """One hash equi-join; extends ``state`` with ``binding``."""
    slots = equi_join_slots(condition, resolver, set(state.index), binding)
    if slots is None:
        raise ColumnarUnsupported("non-equi join condition")
    (left_bind, left_col), (_, right_col) = slots
    left_key = state.context().column(left_bind, left_col)
    r_idx = right_positions if right_positions is not None \
        else np.arange(len(table))
    right_key = _batch_to_vec(table.batch(right_col).take(r_idx))

    l_codes, r_codes = _join_codes(left_key, right_key)
    # Right side: stable-sort by code so within-key order is original.
    r_valid = r_codes >= 0
    rv_codes = r_codes[r_valid]
    rv_idx = r_idx[r_valid]
    r_order = np.argsort(rv_codes, kind="stable")
    r_sorted = rv_idx[r_order]
    sorted_codes = rv_codes[r_order]
    present, seg_starts, seg_counts = np.unique(
        sorted_codes, return_index=True, return_counts=True)

    slot = np.searchsorted(present, l_codes)
    slot = np.clip(slot, 0, max(len(present) - 1, 0))
    matched = (l_codes >= 0) & (len(present) > 0)
    if len(present):
        matched &= present[slot] == l_codes
    counts = np.where(matched, seg_counts[slot] if len(present) else 0, 0)
    counts = counts.astype(np.int64)
    if kind == "LEFT":
        cnt_eff = np.where(counts == 0, 1, counts)
    else:
        cnt_eff = counts
    total = int(cnt_eff.sum())
    left_positions = np.repeat(np.arange(state.length), cnt_eff)
    if total:
        block_starts = np.concatenate(
            ([0], np.cumsum(cnt_eff)[:-1])).astype(np.int64)
        within = np.arange(total, dtype=np.int64) \
            - np.repeat(block_starts, cnt_eff)
        rstart = np.where(matched, seg_starts[slot] if len(present) else 0,
                          0).astype(np.int64)
        pos_in_sorted = np.repeat(rstart, cnt_eff) + within
        pos_in_sorted = np.clip(pos_in_sorted, 0,
                                max(len(r_sorted) - 1, 0))
        out_right = r_sorted[pos_in_sorted] if len(r_sorted) else \
            np.full(total, -1, dtype=np.int64)
        if kind == "LEFT":
            pad = np.repeat(counts == 0, cnt_eff)
            out_right = np.where(pad, -1, out_right)
    else:
        out_right = np.empty(0, dtype=np.int64)
    for b in state.index:
        state.index[b] = state.index[b][left_positions]
    state.index[binding] = out_right.astype(np.int64)
    state.length = total


def _join_codes(left_key, right_key):
    """Joint factorization of both join keys (python equality); nulls
    get code -1 so they never match."""
    def classify(kind):
        if kind in ("int", "float", "bool"):
            return "num"
        if kind == "text":
            return "text"
        raise ColumnarUnsupported("join key over mixed-type values")

    lc, rc = classify(left_key.kind), classify(right_key.kind)
    if lc != rc:
        # Text never equals a number under python ==: no matches.
        return (np.full(len(left_key), -1, dtype=np.int64),
                np.full(len(right_key), -1, dtype=np.int64))
    nl = len(left_key)
    if lc == "num":
        both = np.concatenate([left_key.values.astype(np.float64),
                               right_key.values.astype(np.float64)])
        _, inv = np.unique(both, return_inverse=True)
        codes = inv.astype(np.int64)
    else:
        lvals = left_key.values.copy()
        rvals = right_key.values.copy()
        lvals[left_key.mask] = ""
        rvals[right_key.mask] = ""
        try:
            both = np.concatenate([lvals.astype(str), rvals.astype(str)])
            _, inv = np.unique(both, return_inverse=True)
            codes = inv.astype(np.int64)
        except (TypeError, ValueError):
            raise ColumnarUnsupported("unorderable text join keys")
    codes[:nl][left_key.mask] = -1
    codes[nl:][right_key.mask] = -1
    return codes[:nl], codes[nl:]


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------

def _sort_rank(vec, n, descending):
    """A float array whose ascending order matches the row engine's
    ``_sort_key`` for this key (with reverse=True emulated for desc)."""
    v = _broadcast(vec, n)
    mask = v.mask
    if v.kind in ("int", "float", "bool"):
        nonnull = v.values[~mask]
        u, inv = np.unique(nonnull, return_inverse=True)
        ranks = np.zeros(n, dtype=np.float64)
        ranks[~mask] = inv.astype(np.float64) + 1.0
    elif v.kind == "text":
        tmp = v.values.copy()
        tmp[mask] = ""
        try:
            u, inv = np.unique(tmp.astype(str)[~mask], return_inverse=True)
        except (TypeError, ValueError):
            return _sort_rank_object(v, n, descending)
        ranks = np.zeros(n, dtype=np.float64)
        ranks[~mask] = inv.astype(np.float64) + 1.0
    else:
        return _sort_rank_object(v, n, descending)
    if descending:
        out = -ranks
        out[mask] = 1.0     # NULLs sort last under reverse=True
        return out
    return ranks


def _sort_rank_object(vec, n, descending):
    from .executor import _sort_key
    values = vec.to_pylist()
    try:
        ordered = sorted({_sort_key(x) for x in values})
    except TypeError:
        raise ColumnarUnsupported("unorderable sort keys")
    rank_of = {key: float(i) for i, key in enumerate(ordered)}
    ranks = np.fromiter((rank_of[_sort_key(x)] for x in values),
                        dtype=np.float64, count=n)
    return -ranks if descending else ranks


# ---------------------------------------------------------------------------
# Top-level execution
# ---------------------------------------------------------------------------

def _expand_items(select, resolver):
    items = []
    for item in select.items:
        if isinstance(item.expr, ast.Star):
            for binding, index, name in resolver.all_columns(
                    item.expr.table):
                items.append(ast.SelectItem(
                    expr=ast.Column(name=name, table=binding), alias=name))
        else:
            items.append(item)
    return items


def _materialize(value, n):
    """Vec/Const → python value list of length n."""
    if isinstance(value, Const):
        return [value.value] * n
    return value.to_pylist()


def execute_columnar(select, catalog, info=None):
    """Columnar execution; returns ``(columns, rows)``.

    Raises :class:`ColumnarUnsupported` for anything outside the exact
    vectorized surface; the dispatcher falls back to the row engine.
    ``info`` (optional dict) accumulates plan/pruning counters for
    explain output and telemetry.
    """
    if select.table is None:
        raise ColumnarUnsupported("constant SELECT (no FROM)")
    info = info if info is not None else {}
    info.setdefault("chunks_pruned", 0)
    info.setdefault("chunks_total", 0)
    info.setdefault("batch_rows", 0)

    resolver = Resolver(
        [(select.table.binding, catalog.get(select.table.name))]
        + [(j.table.binding, catalog.get(j.table.name))
           for j in select.joins])
    plan = build_plan(select, catalog, resolver)

    # -- scans + joins ------------------------------------------------------
    sequence, estimates, reordered = order_joins(plan, resolver)
    if sequence is None:
        sequence = plan.bindings
        reordered = False
    info["join_order"] = [b for b, _, _, _ in sequence]
    info["estimates"] = estimates
    info["reordered"] = reordered

    tables = {b: t for b, t, _, _ in plan.bindings}
    state = _JoinState(tables)
    base_binding, base_table = sequence[0][0], sequence[0][1]
    base_positions = _scan_positions(
        base_binding, base_table,
        plan.scan_filters.get(base_binding, ()), resolver, info)
    if base_positions is None:
        base_positions = np.arange(len(base_table), dtype=np.int64)
    state.index[base_binding] = base_positions
    state.length = len(base_positions)
    for binding, table, kind, condition in sequence[1:]:
        right_positions = _scan_positions(
            binding, table, plan.scan_filters.get(binding, ()),
            resolver, info)
        _join_step(state, binding, table, kind, condition,
                   right_positions, resolver)

    if reordered:
        # Restore the reference engine's row order: lexicographic by the
        # declared FROM/JOIN binding sequence.
        declared = [b for b, _, _, _ in plan.bindings]
        keys = tuple(state.index[b] for b in reversed(declared))
        perm = np.lexsort(keys)
        state.apply(perm)

    ctx = state.context()
    for conjunct in plan.residual:
        v = _evaluate(conjunct, ctx, resolver)
        true, _ = _truthy(v, ctx.length)
        ctx = ctx.subset(np.flatnonzero(true))

    # -- items / grouping ---------------------------------------------------
    items = _expand_items(select, resolver)
    columns = [item.output_name(k) for k, item in enumerate(items)]
    has_aggregates = any(contains_aggregate(i.expr) for i in items) or \
        (select.having is not None and contains_aggregate(select.having))
    grouped = bool(select.group_by) or has_aggregates

    if grouped:
        out_ctx = _grouped_context(select, items, ctx, resolver)
    else:
        if select.having is not None:
            raise SqlRuntimeError("HAVING requires GROUP BY or aggregates")
        out_ctx = ctx

    # -- projection / distinct / order / limit ------------------------------
    n = out_ctx.length
    item_vecs = {}

    def item_vec(index):
        v = item_vecs.get(index)
        if v is None:
            v = _evaluate(items[index].expr, out_ctx, resolver)
            item_vecs[index] = v
        return v

    order_keys = []
    # Order keys are only evaluated when there are rows to order — the
    # row engine computes them per output row, so an out-of-range
    # ORDER BY position never raises over an empty result.
    for order in select.order_by if n else ():
        expr = order.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
                and not isinstance(expr.value, bool):
            position = expr.value
            if not 1 <= position <= len(items):
                raise SqlRuntimeError(
                    f"ORDER BY position {position} out of range")
            order_keys.append((item_vec(position - 1), order.descending))
            continue
        if isinstance(expr, ast.Column) and not expr.table \
                and expr.name in columns:
            order_keys.append((item_vec(columns.index(expr.name)),
                               order.descending))
            continue
        order_keys.append((_evaluate(expr, out_ctx, resolver),
                           order.descending))

    positions = np.arange(n, dtype=np.int64)
    if select.distinct:
        for k in range(len(items)):
            item_vec(k)
        lists = [_materialize(item_vecs[k], n) for k in range(len(items))]
        seen = set()
        kept = []
        for i in range(n):
            marker = tuple((repr(type(lst[i])), lst[i]) for lst in lists)
            if marker not in seen:
                seen.add(marker)
                kept.append(i)
        positions = np.asarray(kept, dtype=np.int64)

    if order_keys:
        ranks = [_sort_rank(vec, n, desc) for vec, desc in order_keys]
        sub = [r[positions] for r in ranks]
        perm = np.lexsort(tuple(reversed(sub)))
        positions = positions[perm]

    if select.offset:
        positions = positions[select.offset:]
    if select.limit is not None:
        positions = positions[:select.limit]

    # Evaluate any remaining items only over the surviving slice.
    final_n = len(positions)
    out_lists = []
    sliced_ctx = None
    full = len(positions) == n and bool(
        np.all(positions == np.arange(n)))
    for k in range(len(items)):
        v = item_vecs.get(k)
        if v is not None:
            if isinstance(v, Vec) and not full:
                v = v.take(positions)
            out_lists.append(_materialize(v, final_n))
            continue
        if full:
            out_lists.append(_materialize(item_vec(k), final_n))
            continue
        if sliced_ctx is None:
            sliced_ctx = _slice_context(out_ctx, positions)
        out_lists.append(_materialize(
            _evaluate(items[k].expr, sliced_ctx, resolver), final_n))

    rows = list(zip(*out_lists)) if out_lists and final_n else []
    if final_n and not rows:
        rows = [() for _ in range(final_n)]
    info["result_rows"] = final_n
    return columns, rows


def _slice_context(ctx, positions):
    if isinstance(ctx, RowContext):
        sub = ctx.subset(positions)
        sub.aggregates = {key: vec.take(positions)
                          for key, vec in ctx.aggregates.items()}
        return sub
    if isinstance(ctx, EmptyGroupContext):
        return ctx
    raise ColumnarUnsupported("cannot slice context")


def _grouped_context(select, items, ctx, resolver):
    """Build the group-level context: rep-row columns + aggregate vecs."""
    n = ctx.length
    key_vecs = [_evaluate(g, ctx, resolver) for g in select.group_by]
    if select.group_by:
        gcodes, n_groups, rep_positions = _group_codes(key_vecs, n)
    else:
        gcodes = np.zeros(n, dtype=np.int64)
        n_groups = 1
        rep_positions = np.zeros(1 if n else 0, dtype=np.int64)

    agg_nodes = []
    for item in items:
        collect_aggregates(item.expr, agg_nodes)
    if select.having is not None:
        collect_aggregates(select.having, agg_nodes)
    for order in select.order_by:
        collect_aggregates(order.expr, agg_nodes)

    if n == 0 and not select.group_by:
        # One empty global group: COUNT()=0, other aggregates NULL.
        aggregates = {}
        for agg in agg_nodes:
            if agg.name == "COUNT":
                aggregates[id(agg)] = Vec(
                    np.zeros(1, dtype=np.int64),
                    np.zeros(1, dtype=bool), "int")
            else:
                aggregates[id(agg)] = Vec(
                    np.zeros(1, dtype=np.float64),
                    np.ones(1, dtype=bool), "float")
        group_ctx = EmptyGroupContext(aggregates)
    else:
        aggregates = {id(agg): _aggregate(agg, ctx, resolver, gcodes,
                                          n_groups)
                      for agg in agg_nodes}
        group_ctx = ctx.subset(rep_positions)
        group_ctx.aggregates = aggregates

    if select.having is not None and group_ctx.length:
        hv = _evaluate(select.having, group_ctx, resolver)
        true, _ = _truthy(hv, group_ctx.length)
        keep = np.flatnonzero(true)
        if isinstance(group_ctx, EmptyGroupContext):
            if len(keep) == 0:
                empty = RowContext(ctx.tables,
                                   {b: np.empty(0, dtype=np.int64)
                                    for b in ctx.index_map}, 0)
                return empty
            return group_ctx
        group_ctx = _slice_context(group_ctx, keep)
    return group_ctx
