"""SQL tokenizer for the embedded relational engine.

Produces a flat token stream consumed by the recursive-descent parser.
Supported lexicon: identifiers (optionally double-quoted), single-quoted
string literals with ``''`` escaping, integer/float literals, the SQL
keyword set used by the Q&A module, comparison and arithmetic operators,
and punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "tokenize", "KEYWORDS", "SqlSyntaxError",
           "MAX_SQL_CHARS", "MAX_TOKEN_CHARS"]


class SqlSyntaxError(ValueError):
    """Raised on lexical or grammatical errors, with position context."""


#: Hard ceiling on statement length.  Megabyte "statements" are never
#: legitimate Q&A output; refusing them up front keeps hostile input
#: from tying up the lexer (and bounds error-message work downstream).
MAX_SQL_CHARS = 256 * 1024

#: Hard ceiling on a single token (identifier, number or string
#: literal).  A 1 MB identifier must be one typed error, not a stall.
MAX_TOKEN_CHARS = 4096


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT",
    "IN", "IS", "NULL", "LIKE", "BETWEEN", "JOIN", "INNER", "LEFT",
    "ON", "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE", "END",
}

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>")
_ONE_CHAR_OPS = "+-*/%=<>"
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical unit: kind ∈ {KW, IDENT, NUM, STR, OP, PUNCT, EOF}."""

    kind: str
    value: str
    pos: int

    def is_kw(self, *names):
        return self.kind == "KW" and self.value in names


def tokenize(text):
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    if not isinstance(text, str):
        raise SqlSyntaxError(
            f"SQL must be a string, not {type(text).__name__}")
    if len(text) > MAX_SQL_CHARS:
        raise SqlSyntaxError(
            f"statement of {len(text)} characters exceeds the "
            f"{MAX_SQL_CHARS}-character limit")
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise SqlSyntaxError(f"unterminated string at position {i}")
            if j >= n:
                raise SqlSyntaxError(f"unterminated string at position {i}")
            tokens.append(Token("STR", "".join(buf), i))
            i = j + 1
            continue
        if ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated identifier at position {i}")
            tokens.append(Token("IDENT", text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and text[k].isdigit():
                    while k < n and text[k].isdigit():
                        k += 1
                    j = k
            tokens.append(Token("NUM", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KW", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("OP", "!=" if two == "<>" else two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    for token in tokens:
        if len(token.value) > MAX_TOKEN_CHARS:
            raise SqlSyntaxError(
                f"token of {len(token.value)} characters at position "
                f"{token.pos} exceeds the {MAX_TOKEN_CHARS}-character limit")
    return tokens
