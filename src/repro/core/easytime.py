"""EasyTime: the public facade wiring the four modules together.

One object exposes everything the demo frontend offers:

* one-click evaluation (``one_click``) — §II-B / scenario S1;
* method recommendation and automated ensembling (``recommend``,
  ``automl``) — §II-C / scenario S2;
* natural-language Q&A (``ask``) — §II-D / scenario S3;
* dataset upload/choice, characteristics display and forecast
  visualisation helpers used by the web layer.
"""

from __future__ import annotations

import numpy as np

from ..characteristics import extract
from ..datasets import DatasetRegistry, TimeSeries, loads_csv
from ..datasets.split import train_val_test_split
from ..ensemble import AutoEnsemble
from ..evaluation.strategies import make_strategy
from ..knowledge import build_benchmark_knowledge
from ..methods.registry import create, list_methods, method_info
from ..pipeline import BenchmarkConfig, RunLogger, loads_config, run_one_click
from ..qa import QAEngine
from ..report import render_chart

__all__ = ["EasyTime"]


class EasyTime:
    """The assembled system.

    Parameters
    ----------
    seed:
        Master seed for the dataset registry and all training.
    per_domain / length / horizons / pool:
        Size of the benchmark run that seeds the knowledge base during
        :meth:`setup` (the paper's store holds 30+ methods × 8,000+
        series; defaults are laptop-scaled, raise them to grow the store).
    """

    def __init__(self, seed=7, per_domain=2, length=384, horizons=(24,),
                 pool=None, logger=None):
        self.seed = seed
        self.per_domain = per_domain
        self.length = length
        self.horizons = tuple(horizons)
        self.pool = pool
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()
        self.registry = DatasetRegistry(seed=seed)
        self.knowledge = None
        self.auto = None
        self.qa = None
        self._uploads = {}
        self._ready = False

    # -- lifecycle ---------------------------------------------------------
    def setup(self, ensemble_params=None, progress=None):
        """Build the knowledge base and pretrain the ensemble (offline phase)."""
        from ..knowledge.builder import FAST_POOL
        pool = self.pool or FAST_POOL
        with self.logger.timer("easytime.setup"):
            self.knowledge, self.registry = build_benchmark_knowledge(
                per_domain=self.per_domain, length=self.length,
                horizons=self.horizons, methods=pool, seed=self.seed,
                registry=self.registry, logger=self.logger.child("kb"))
            if progress:
                progress("knowledge base built")
            params = dict(ensemble_params or {})
            params.setdefault("ts2vec_params", {"iterations": 40})
            params.setdefault("classifier_params", {"epochs": 120})
            self.auto = AutoEnsemble(self.knowledge, registry=self.registry,
                                     seed=self.seed, **params)
            self.auto.pretrain(progress=progress)
            self.qa = QAEngine(self.knowledge)
        self._ready = True
        return self

    def _require_ready(self):
        if not self._ready:
            raise RuntimeError("call setup() first")

    # -- data access (Fig. 4 labels 1-2) -----------------------------------
    def upload_dataset(self, csv_text, name="uploaded", imputer="linear"):
        """Register a user CSV dataset; returns its TimeSeries.

        Gaps (empty CSV cells) are imputed automatically — seasonal-phase
        means when a period is detectable, otherwise ``imputer``.
        """
        from ..characteristics import detect_period
        from ..datasets.impute import has_missing, impute, missing_fraction
        series = loads_csv(csv_text, name=name)
        filled = 0.0
        if has_missing(series.values):
            filled = missing_fraction(series.values)
            dense = impute(series.values, "linear")
            period = detect_period(dense.mean(axis=1))
            if period >= 2:
                dense = impute(series.values, "seasonal", period=period)
            series = series.with_values(dense)
        self._uploads[name] = series
        self.logger.info("easytime.upload", name=name,
                         length=series.length, channels=series.n_channels,
                         imputed_fraction=round(filled, 4))
        return series

    def choose_dataset(self, name, length=None):
        """Fetch a benchmark series (or a previous upload) by name."""
        if name in self._uploads:
            return self._uploads[name]
        return self.registry.get(name, length=length or self.length)

    def list_datasets(self):
        """Names known to the knowledge base plus uploads."""
        names = list(self._uploads)
        if self.knowledge is not None:
            names += self.knowledge.dataset_names()
        return sorted(names)

    def list_methods(self, category=None):
        return list_methods(category=category)

    def method_details(self, name):
        return method_info(name)

    def characteristics(self, series):
        """Characteristic scores displayed next to a dataset (label 4)."""
        return extract(self._coerce(series)).as_dict()

    @staticmethod
    def _coerce(series):
        if isinstance(series, TimeSeries):
            return series
        return TimeSeries(np.asarray(series, dtype=np.float64))

    # -- S1: one-click evaluation ----------------------------------------
    def one_click(self, config, progress=None, cancel=None, policy=None,
                  executor=None, workers=None, dataplane=None):
        """Run a benchmark config (BenchmarkConfig, dict or JSON text).

        ``cancel`` (a :class:`threading.Event`) and ``policy`` (a
        :class:`~repro.resilience.FailurePolicy`) pass through to the
        runner, so callers — the server's background bench jobs — get
        cooperative cancellation and failure budgets.  ``executor`` /
        ``workers`` select the grid backend and ``dataplane`` controls
        the zero-copy store (``None`` auto, ``False`` off, or a
        long-lived :class:`~repro.runtime.SharedArrayStore` shared
        across runs — how the server reuses one store per process).
        """
        if isinstance(config, str):
            config = loads_config(config)
        elif isinstance(config, dict):
            import json
            config = loads_config(json.dumps(config))
        if not isinstance(config, BenchmarkConfig):
            raise TypeError("config must be BenchmarkConfig, dict or JSON")
        return run_one_click(config, registry=self.registry,
                             logger=self.logger.child("one_click"),
                             progress=progress, cancel=cancel, policy=policy,
                             executor=executor, workers=workers,
                             dataplane=dataplane)

    def evaluate_method(self, method_name, series, strategy="rolling",
                        lookback=96, horizon=24,
                        metrics=("mae", "mse", "smape"), **strategy_kwargs):
        """Evaluate one method on one series (Fig. 4 label 7)."""
        series = self._coerce(series) if not isinstance(series, TimeSeries) \
            else series
        model = create(method_name)
        for attr, value in (("lookback", lookback), ("horizon", horizon)):
            if hasattr(model, attr):
                setattr(model, attr, value)
        strat = make_strategy(strategy, lookback=lookback, horizon=horizon,
                              metrics=metrics, keep_forecasts=True,
                              **strategy_kwargs)
        return strat.evaluate(model, series)

    # -- S2: recommendation + automated ensemble -----------------------------
    def recommend(self, series, k=5):
        """Characteristics + top-k recommended methods (labels 3-4)."""
        self._require_ready()
        return self.auto.recommend(self._as_series(series), k=k)

    def automl(self, series, k=3, horizon=None):
        """Build the best-fitting ensemble and forecast (label 8).

        Returns ``(forecast, info)``; ``info`` includes the learned
        weights and the series characteristics.
        """
        self._require_ready()
        return self.auto.forecast(self._as_series(series),
                                  horizon=horizon, k=k)

    def forecast_figure(self, series, forecast, title="forecast"):
        """SVG comparing recent history with a forecast (labels 9-10)."""
        series = self._as_series(series)
        history = list(series.values[-3 * len(forecast):, 0])
        fc = np.asarray(forecast, dtype=np.float64)
        fc_col = fc[:, 0] if fc.ndim == 2 else fc
        # The renderer has no NaN-gap support, so history and forecast are
        # drawn as two aligned segments sharing the handover point.
        spec = {
            "type": "line", "title": title,
            "series": [
                {"name": "history", "values": history + [history[-1]]},
                {"name": "forecast",
                 "values": [history[-1]] * len(history) + list(fc_col)},
            ],
        }
        return render_chart(spec)

    def _as_series(self, series):
        if isinstance(series, TimeSeries):
            return series
        if isinstance(series, str):
            return self.choose_dataset(series)
        return self._coerce(series)

    # -- S3: natural-language Q&A --------------------------------------------
    def ask(self, question):
        """Answer a question about benchmark results (Fig. 5)."""
        self._require_ready()
        response = self.qa.ask(question)
        self.logger.info("easytime.qa", question=question, ok=response.ok)
        return response

    # -- persistence and reporting ---------------------------------------
    def save_knowledge(self, directory):
        """Persist the accumulated benchmark knowledge as CSV files."""
        self._require_ready()
        from ..knowledge.persist import save_knowledge
        return save_knowledge(self.knowledge, directory)

    def load_knowledge(self, directory, ensemble_params=None,
                       progress=None):
        """Restore a saved knowledge base and re-run the offline phase.

        Skips the benchmark re-run of :meth:`setup`; only TS2Vec and the
        classifier are retrained (seconds, not minutes).
        """
        from ..knowledge.persist import load_knowledge
        self.knowledge = load_knowledge(directory)
        params = dict(ensemble_params or {})
        params.setdefault("ts2vec_params", {"iterations": 40})
        params.setdefault("classifier_params", {"epochs": 120})
        self.auto = AutoEnsemble(self.knowledge, registry=self.registry,
                                 seed=self.seed, **params)
        self.auto.pretrain(progress=progress)
        self.qa = QAEngine(self.knowledge)
        self._ready = True
        return self

    def report_html(self, table, metric="mae", title="EasyTime benchmark"):
        """Render a one-click ResultTable as a standalone HTML report."""
        from ..report.html import html_report
        return html_report(table, metric=metric, title=title)
