"""Public facade of the EasyTime reproduction."""

from .easytime import EasyTime

__all__ = ["EasyTime"]
