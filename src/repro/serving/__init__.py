"""``repro.serving`` — the production serving tier.

Four pieces, composed by :class:`repro.server.EasyTimeServer`:

* :mod:`.frontend` — concurrent front ends: a threaded acceptor with
  graceful drain (:class:`GracefulThreadingHTTPServer`) and an optional
  pre-fork ``SO_REUSEPORT`` multi-process mode (:class:`PreforkServer`);
* :mod:`.registry` — :class:`ModelRegistry`, the warm store of fitted
  forecasters keyed by content fingerprints (config + dataset digest),
  with LRU/TTL eviction and single-flight fit deduplication;
* :mod:`.batcher` — :class:`MicroBatcher`, coalescing concurrent
  ``/forecast`` requests for the same (model, horizon) into one
  ``predict_batch`` call, bitwise-identical to solo predicts;
* :mod:`.admission` — :class:`AdmissionController`, bounded queues and
  per-route concurrency limits that turn overload into fast ``429`` +
  ``Retry-After`` responses instead of hung connections.

The split follows the engine/adapters/API layering: ``repro.methods``
stays the engine, this package is the serving adapter layer, and
``repro.server`` remains the thin HTTP surface.
"""

from .admission import (DEFAULT_LIMITS, AdmissionController,
                        AdmissionRejected, RouteLimit)
from .batcher import BATCH_SIZE_BUCKETS, MicroBatcher
from .frontend import (GracefulThreadingHTTPServer, PreforkServer,
                       reuseport_socket, reuseport_supported)
from .registry import ModelEntry, ModelRegistry, model_key

__all__ = [
    "ModelRegistry", "ModelEntry", "model_key",
    "MicroBatcher", "BATCH_SIZE_BUCKETS",
    "AdmissionController", "AdmissionRejected", "RouteLimit",
    "DEFAULT_LIMITS",
    "GracefulThreadingHTTPServer", "PreforkServer",
    "reuseport_socket", "reuseport_supported",
]
