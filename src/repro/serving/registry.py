"""Warm model registry: fitted forecasters as long-lived, shared artifacts.

The old server fit a fresh model inside every ``/evaluate`` and
``/automl`` request; a model that took seconds to train was thrown away
milliseconds later.  :class:`ModelRegistry` keeps fitted forecasters
warm between requests, keyed by the same content fingerprints the
:class:`~repro.runtime.ArtifactCache` uses — method spec + train
geometry + the dataset's data-plane digest — so two requests asking for
the same model on the same bytes share one fit.

Three properties the serving tier depends on:

* **Single-flight fits.**  N concurrent cold requests for the same key
  trigger exactly one ``fit``; the other N-1 callers block on the
  in-flight fit and receive the *same* fitted object (outcome
  ``"wait"``).  A failed fit propagates its exception to every waiter
  and leaves no entry behind, so the next request retries cleanly.
* **LRU + TTL eviction.**  ``capacity`` bounds resident models (least
  recently *used* evicted first); ``ttl_s`` expires entries whose fit
  finished too long ago, so a registry in a long-lived server cannot
  serve a model trained on data the caller has since re-uploaded
  (expired entries count as misses and are refit).
* **Injectable clock.**  TTL tests pin time instead of sleeping.

Outcomes are counted in the telemetry registry under
``repro_serving_registry_total{result=hit|wait|fit|expired}`` and the
resident-model count is exported as a gauge.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from .. import telemetry
from ..runtime import fingerprint

__all__ = ["ModelRegistry", "ModelEntry", "model_key"]


def model_key(method, params, lookback, horizon, dataset_digest, salt=""):
    """Content fingerprint identifying one fitted model.

    Same construction as the artifact-cache keys: anything that changes
    the fitted state — method, hyper-parameters, train geometry, the
    dataset bytes (via the data plane's array digest) — changes the key.
    """
    return fingerprint("serving.model", salt, method, dict(params or {}),
                       int(lookback), int(horizon), dataset_digest)


@dataclass
class ModelEntry:
    """One warm model plus the metadata ``GET /models`` reports."""

    key: str
    model: object
    method: str = ""
    dataset: str = ""
    lookback: int = 0
    horizon: int = 0
    fitted_at: float = 0.0
    fit_seconds: float = 0.0
    hits: int = 0
    extra: dict = field(default_factory=dict)

    def snapshot(self, now=None):
        age = None if now is None else round(now - self.fitted_at, 3)
        return {"key": self.key[:16], "method": self.method,
                "dataset": self.dataset, "lookback": self.lookback,
                "horizon": self.horizon, "hits": self.hits,
                "fit_seconds": round(self.fit_seconds, 6),
                "age_seconds": age, **self.extra}


class _Flight:
    """One in-progress fit that concurrent cold callers wait on."""

    __slots__ = ("done", "entry", "error")

    def __init__(self):
        self.done = threading.Event()
        self.entry = None
        self.error = None


class ModelRegistry:
    """LRU/TTL registry of fitted forecasters with single-flight fits.

    Parameters
    ----------
    capacity:
        Maximum resident models; ``0`` disables warm reuse entirely
        (every request fits — the cold baseline the E14 benchmark
        measures against).
    ttl_s:
        Seconds a fitted model stays servable; ``None`` means forever.
    clock:
        Monotonic time source (injectable for TTL tests).
    """

    def __init__(self, capacity=32, ttl_s=None, clock=time.monotonic):
        self.capacity = max(int(capacity), 0)
        self.ttl_s = ttl_s
        self.clock = clock
        self._models = OrderedDict()   # key -> ModelEntry (LRU order)
        self._flights = {}             # key -> _Flight
        self._lock = threading.Lock()
        self.counters = {"hits": 0, "fits": 0, "waits": 0, "expired": 0,
                         "evictions": 0, "fit_errors": 0}

    # -- lookup ----------------------------------------------------------
    def get_or_fit(self, key, fit_fn, **meta):
        """Return ``(entry, outcome)`` for ``key``; fit at most once.

        ``outcome`` is ``"hit"`` (warm), ``"wait"`` (another request's
        in-flight fit was joined) or ``"fit"`` (this caller trained the
        model).  ``fit_fn()`` must return the fitted model; ``meta``
        keys (method/dataset/lookback/horizon/...) annotate the entry.
        """
        while True:
            with self._lock:
                entry = self._fresh_entry(key)
                if entry is not None:
                    entry.hits += 1
                    self.counters["hits"] += 1
                    self._observe("hit")
                    return entry, "hit"
                flight = self._flights.get(key)
                if flight is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                return self._run_fit(key, flight, fit_fn, meta), "fit"
            flight.done.wait()
            if flight.error is not None:
                with self._lock:
                    self.counters["waits"] += 1
                self._observe("wait")
                raise flight.error
            if flight.entry is not None:
                with self._lock:
                    flight.entry.hits += 1
                    self.counters["waits"] += 1
                self._observe("wait")
                return flight.entry, "wait"
            # Defensive: no entry and no error — retry from the top.

    def _fresh_entry(self, key):
        """The warm entry for ``key`` or None; expires stale ones."""
        entry = self._models.get(key)
        if entry is None:
            return None
        if self.ttl_s is not None \
                and self.clock() - entry.fitted_at > self.ttl_s:
            del self._models[key]
            self.counters["expired"] += 1
            self._observe("expired")
            return None
        self._models.move_to_end(key)
        return entry

    def _run_fit(self, key, flight, fit_fn, meta):
        start = self.clock()
        try:
            model = fit_fn()
        except BaseException as exc:
            with self._lock:
                self.counters["fit_errors"] += 1
                self._flights.pop(key, None)
            flight.error = exc
            flight.done.set()
            telemetry.inc("repro_serving_fit_errors_total",
                          help="Model fits that raised inside the "
                               "serving registry.")
            raise
        entry = ModelEntry(key=key, model=model,
                           fitted_at=self.clock(),
                           fit_seconds=self.clock() - start, hits=1,
                           **self._split_meta(meta))
        with self._lock:
            self.counters["fits"] += 1
            if self.capacity > 0:
                self._models[key] = entry
                self._models.move_to_end(key)
                while len(self._models) > self.capacity:
                    self._models.popitem(last=False)
                    self.counters["evictions"] += 1
                    telemetry.inc("repro_serving_evictions_total",
                                  help="Warm models evicted by the "
                                       "registry LRU.")
            # Joiners get the leader's model even at capacity 0 — they
            # asked for this exact fit; only *retention* is disabled.
            flight.entry = entry
            self._flights.pop(key, None)
        flight.done.set()
        self._observe("fit")
        telemetry.observe("repro_serving_fit_seconds", entry.fit_seconds,
                          method=entry.method,
                          help="Wall-clock of cold model fits.")
        self._export_size()
        return entry

    @staticmethod
    def _split_meta(meta):
        known = {k: meta[k] for k in ("method", "dataset", "lookback",
                                      "horizon") if k in meta}
        extra = {k: v for k, v in meta.items() if k not in known}
        if extra:
            known["extra"] = extra
        return known

    # -- maintenance -----------------------------------------------------
    def evict(self, key):
        """Drop one warm model; returns True when it was resident."""
        with self._lock:
            entry = self._models.pop(key, None)
        self._export_size()
        return entry is not None

    def clear(self):
        with self._lock:
            self._models.clear()
        self._export_size()

    def keys(self):
        """Resident keys, least recently used first."""
        with self._lock:
            return list(self._models)

    def snapshot(self):
        """``GET /models`` payload: one row per warm model, LRU order."""
        now = self.clock()
        with self._lock:
            rows = [entry.snapshot(now=now)
                    for entry in self._models.values()]
            stats = dict(self.counters)
        stats["resident"] = len(rows)
        stats["capacity"] = self.capacity
        stats["ttl_s"] = self.ttl_s
        return {"models": rows, "stats": stats}

    def stats(self):
        with self._lock:
            out = dict(self.counters)
            out["resident"] = len(self._models)
        return out

    def __len__(self):
        with self._lock:
            return len(self._models)

    def __contains__(self, key):
        with self._lock:
            return key in self._models

    # -- telemetry -------------------------------------------------------
    @staticmethod
    def _observe(result):
        telemetry.inc("repro_serving_registry_total", result=result,
                      help="Warm-model registry lookups by outcome.")

    def _export_size(self):
        if telemetry.active() is not None:
            with self._lock:
                resident = len(self._models)
            telemetry.set_gauge("repro_serving_registry_models", resident,
                                help="Fitted models currently resident "
                                     "in the serving registry.")
