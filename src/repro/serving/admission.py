"""Admission control: bounded queues, per-route concurrency, 429 + Retry-After.

An overloaded server must degrade *predictably*: reject surplus work
fast with a retry hint, never hang a connection or starve the health
probes.  :class:`AdmissionController` enforces, per route class:

* ``max_concurrent`` — requests allowed to execute simultaneously;
* ``max_queue`` — requests allowed to *wait* for an execution slot
  (beyond it, callers are rejected immediately);
* ``queue_timeout_s`` — the longest a queued request waits before it is
  rejected anyway (bounds worst-case latency under saturation).

A rejection raises :class:`AdmissionRejected` carrying the
``retry_after_s`` hint the HTTP layer turns into a ``429`` with a
``Retry-After`` header.  Probe routes (``/health``, ``/healthz``,
``/readyz``, ``/metrics``) are intentionally *not* limited by the
default policy: liveness must stay observable precisely when the server
is saturated.

Queue depth and wait time go to the telemetry registry
(``repro_serving_queue_depth``, ``repro_serving_queue_wait_seconds``)
alongside admit/reject counters, which is how the E14 benchmark measures
overload behaviour without instrumenting clients.

Chaos: every admission decision passes the ``serving.admit`` fault point
(keyed by route), so fault plans can force rejects/delays on the
admission path itself.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .. import telemetry
from ..resilience.faults import fault_point

__all__ = ["AdmissionController", "AdmissionRejected", "RouteLimit",
           "DEFAULT_LIMITS"]


class AdmissionRejected(RuntimeError):
    """Raised when a request cannot be admitted; maps to HTTP 429."""

    def __init__(self, route, reason, retry_after_s=1.0):
        super().__init__(f"{route}: {reason}")
        self.route = route
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class RouteLimit:
    """Concurrency budget for one route class."""

    max_concurrent: int = 8
    max_queue: int = 16
    queue_timeout_s: float = 10.0
    retry_after_s: float = 1.0


#: Default policy: heavy compute routes share small budgets, probe and
#: introspection routes are unlimited (absent == unlimited).
DEFAULT_LIMITS = {
    "/forecast": RouteLimit(max_concurrent=8, max_queue=32,
                            queue_timeout_s=30.0),
    "/evaluate": RouteLimit(max_concurrent=4, max_queue=8,
                            queue_timeout_s=30.0, retry_after_s=2.0),
    "/automl": RouteLimit(max_concurrent=2, max_queue=4,
                          queue_timeout_s=30.0, retry_after_s=5.0),
    "/recommend": RouteLimit(max_concurrent=4, max_queue=8,
                             queue_timeout_s=30.0),
    "/upload": RouteLimit(max_concurrent=4, max_queue=8,
                          queue_timeout_s=10.0),
    "/qa": RouteLimit(max_concurrent=4, max_queue=8,
                      queue_timeout_s=10.0),
}


class _Gate:
    """Counting gate: active slots + a bounded waiting room."""

    __slots__ = ("limit", "active", "waiting", "cond")

    def __init__(self, limit):
        self.limit = limit
        self.active = 0
        self.waiting = 0
        self.cond = threading.Condition()


class AdmissionController:
    """Per-route-class admission gates.

    ``admit(route)`` is a context manager::

        with admission.admit("/forecast"):
            ... handle the request ...

    Routes without a configured limit pass through untouched (zero
    cost beyond one dict lookup), which is what keeps ``/health`` fast
    under overload.
    """

    def __init__(self, limits=None):
        table = DEFAULT_LIMITS if limits is None else limits
        self._gates = {route: _Gate(limit)
                       for route, limit in table.items()}
        self.counters = {"admitted": 0, "rejected": 0, "queued": 0}
        self._lock = threading.Lock()

    def limits(self):
        """``route -> RouteLimit`` snapshot (read-only view)."""
        return {route: gate.limit for route, gate in self._gates.items()}

    def admit(self, route):
        """Context manager holding one execution slot for ``route``."""
        return _Admission(self, self._gates.get(route), route)

    # -- internals -------------------------------------------------------
    def _enter(self, gate, route):
        fault_point("serving.admit", route)
        if gate is None:
            return
        limit = gate.limit
        start = None
        with gate.cond:
            if gate.active < limit.max_concurrent:
                gate.active += 1
            else:
                if gate.waiting >= limit.max_queue:
                    self._reject(route, "queue full", limit)
                gate.waiting += 1
                self._observe_depth(route, gate)
                start = time.perf_counter()
                deadline = start + limit.queue_timeout_s
                try:
                    while gate.active >= limit.max_concurrent:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0 \
                                or not gate.cond.wait(timeout=remaining):
                            if gate.active >= limit.max_concurrent:
                                self._reject(route, "queue timeout",
                                             limit)
                    gate.active += 1
                finally:
                    gate.waiting -= 1
                    self._observe_depth(route, gate)
        with self._lock:
            self.counters["admitted"] += 1
            if start is not None:
                self.counters["queued"] += 1
        telemetry.inc("repro_serving_admitted_total", route=route,
                      help="Requests admitted past the admission gate.")
        telemetry.record("serving.admit", route=route,
                         queued=start is not None)
        if start is not None:
            telemetry.observe("repro_serving_queue_wait_seconds",
                              time.perf_counter() - start, route=route,
                              help="Time spent queued for an execution "
                                   "slot.")

    def _exit(self, gate):
        if gate is None:
            return
        with gate.cond:
            gate.active -= 1
            gate.cond.notify()

    def _reject(self, route, reason, limit):
        with self._lock:
            self.counters["rejected"] += 1
        telemetry.inc("repro_serving_rejected_total", route=route,
                      reason=reason.replace(" ", "_"),
                      help="Requests rejected by admission control.")
        telemetry.record("serving.reject", route=route, reason=reason)
        raise AdmissionRejected(route, reason,
                                retry_after_s=limit.retry_after_s)

    @staticmethod
    def _observe_depth(route, gate):
        telemetry.set_gauge("repro_serving_queue_depth", gate.waiting,
                            route=route,
                            help="Requests currently queued for an "
                                 "execution slot.")

    def stats(self):
        with self._lock:
            out = dict(self.counters)
        out["routes"] = {route: {"active": gate.active,
                                 "waiting": gate.waiting}
                         for route, gate in self._gates.items()}
        return out


class _Admission:
    """The context manager handed out by :meth:`AdmissionController.admit`."""

    __slots__ = ("controller", "gate", "route", "_held")

    def __init__(self, controller, gate, route):
        self.controller = controller
        self.gate = gate
        self.route = route
        self._held = False

    def __enter__(self):
        self.controller._enter(self.gate, self.route)
        self._held = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._held:
            self._held = False
            self.controller._exit(self.gate)
        return False
