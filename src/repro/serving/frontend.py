"""Concurrent HTTP front end: threaded acceptor pool + pre-fork workers.

The seed server used the single-threaded ``http.server.HTTPServer``: one
slow ``/evaluate`` blocked every other request including ``/health``.
This module provides the two front ends the serving tier runs behind:

:class:`GracefulThreadingHTTPServer`
    a thread-per-connection acceptor (stdlib ``ThreadingHTTPServer``)
    that *tracks in-flight handlers* so shutdown can drain: stop
    accepting, wait (bounded) for live requests to finish, then close.
    This is the embeddable mode :class:`~repro.server.EasyTimeServer`
    uses, and the per-worker server of the pre-fork mode.

:class:`PreforkServer`
    an optional multi-process mode: N forked workers each bind their own
    ``SO_REUSEPORT`` socket on the same port, so the kernel load-balances
    accepts across processes and one Python process's GIL stops being
    the ceiling.  Workers are plain ``multiprocessing.Process`` children
    (``fork`` start method — the warm EasyTime system, knowledge base
    and data-plane attach cache are inherited for free).  ``stop()``
    signals children to drain and joins them.  Linux-only (SO_REUSEPORT);
    :func:`reuseport_supported` probes availability so callers can fall
    back to the threaded mode.

Both front ends serve the same handler class built by
:func:`repro.server.make_handler` — the front end decides *where*
requests run, never *what* they mean.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from http.server import ThreadingHTTPServer

__all__ = ["GracefulThreadingHTTPServer", "PreforkServer",
           "reuseport_socket", "reuseport_supported"]


class GracefulThreadingHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection server with bounded graceful drain.

    ``daemon_threads`` keeps a hung handler from blocking interpreter
    exit; :meth:`drain` gives well-behaved handlers a bounded window to
    finish before the listening socket closes underneath them.
    """

    daemon_threads = True
    #: Listen backlog: deep enough that a burst queues in the kernel
    #: instead of getting connection-refused before admission control
    #: can even answer 429.
    request_queue_size = 128

    def __init__(self, server_address, handler_class,
                 bind_and_activate=True):
        self._inflight = 0
        self._inflight_cond = threading.Condition()
        super().__init__(server_address, handler_class,
                         bind_and_activate=bind_and_activate)

    def process_request_thread(self, request, client_address):
        with self._inflight_cond:
            self._inflight += 1
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._inflight_cond:
                self._inflight -= 1
                self._inflight_cond.notify_all()

    @property
    def inflight(self):
        """Requests currently being handled (approximate, racy reads ok)."""
        with self._inflight_cond:
            return self._inflight

    def drain(self, timeout=5.0):
        """Wait up to ``timeout`` for in-flight handlers; True if drained.

        Call *after* ``shutdown()`` (no new accepts) and *before*
        ``server_close()`` (handler sockets still usable while they
        finish writing responses).
        """
        deadline = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(timeout=remaining)
        return True


def reuseport_supported():
    """Whether this platform can bind multiple sockets to one port."""
    return hasattr(socket, "SO_REUSEPORT")


def reuseport_socket(host, port, backlog=128):
    """A listening TCP socket with ``SO_REUSEPORT`` set.

    Several such sockets may bind the same ``(host, port)``; the kernel
    then spreads incoming connections across them — the classic pre-fork
    scaling pattern (nginx, uwsgi) without a master/proxy process.
    """
    if not reuseport_supported():
        raise OSError("SO_REUSEPORT is not available on this platform")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(server_factory, host, port, ready, anchor=None,
                 on_exit=None):
    """Child body: build a server on a fresh SO_REUSEPORT socket, serve.

    The factory must construct its server with
    ``bind_and_activate=False`` — each worker binds its *own*
    ``SO_REUSEPORT`` socket here; a plain bind of the same port would
    fail against its siblings.

    The parent's inherited *anchor* socket must be closed first: with
    ``SO_REUSEPORT`` the kernel hashes connections across **every**
    listening socket on the port, and a forked copy of the anchor that
    nobody accepts on would silently swallow its share of connections.
    """
    if anchor is not None:
        anchor.close()
    sock = reuseport_socket(host, port)
    server = server_factory((host, port))
    # Swap the factory's unbound placeholder socket for the live one.
    try:
        server.socket.close()
    except OSError:
        pass
    server.socket = sock
    stopping = threading.Event()

    def _terminate(signum, frame):
        if not stopping.is_set():
            stopping.set()
            # shutdown() must run off the serve_forever thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent handles Ctrl-C
    ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        if hasattr(server, "drain"):
            server.drain(timeout=5.0)
        server.server_close()
        if on_exit is not None:
            # Release per-worker resources (shared-memory store, log
            # sinks) before the child exits.
            on_exit()


class PreforkServer:
    """N forked worker processes accepting on one SO_REUSEPORT port.

    Parameters
    ----------
    server_factory:
        ``(addr) -> HTTPServer`` builder; called *inside* each child so
        every worker owns its sockets and threads.  With the ``fork``
        start method the factory's closure (the warm API object) is
        inherited copy-on-write.
    host / port:
        Bind address.  ``port=0`` picks a free port once in the parent
        and every worker binds the same concrete port.
    workers:
        Number of child processes.
    """

    def __init__(self, server_factory, host="127.0.0.1", port=0,
                 workers=2, on_exit=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.server_factory = server_factory
        self.host = host
        self.workers = int(workers)
        self.on_exit = on_exit
        # Reserve the concrete port up front (and hold the socket so the
        # port cannot be stolen between now and the workers binding it).
        self._anchor = reuseport_socket(host, port)
        self.port = self._anchor.getsockname()[1]
        self._children = []
        self._stopped = False

    @property
    def address(self):
        return f"http://{self.host}:{self.port}"

    def start(self, timeout=30.0):
        """Fork the workers; returns once every child is accepting."""
        ctx = multiprocessing.get_context("fork")
        events = []
        for _ in range(self.workers):
            ready = ctx.Event()
            proc = ctx.Process(target=_worker_main,
                               args=(self.server_factory, self.host,
                                     self.port, ready, self._anchor,
                                     self.on_exit),
                               daemon=True)
            proc.start()
            self._children.append(proc)
            events.append(ready)
        deadline = time.monotonic() + timeout
        for ready in events:
            if not ready.wait(timeout=max(deadline - time.monotonic(),
                                          0.1)):
                self.stop()
                raise RuntimeError("pre-fork worker failed to start")
        # The anchor socket must not steal connections from the workers.
        self._anchor.close()
        return self.address

    def stop(self, timeout=10.0):
        """SIGTERM every worker (drain + close), then join; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for proc in self._children:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._children:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        try:
            self._anchor.close()
        except OSError:
            pass

    def alive(self):
        """Number of live worker processes."""
        return sum(1 for proc in self._children if proc.is_alive())

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False
