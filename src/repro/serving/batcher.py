"""Microbatching queue: coalesce concurrent forecasts into one batched call.

The deep forecasters' ``predict_batch`` (PR 2) amortises one batched
forward pass over many histories and is bitwise-identical to the
per-history loop; the classical methods inherit the base-class loop, so
batching *never* changes a forecast.  What was missing is the queue in
front of it: under concurrent load, N requests for the same fitted model
used to mean N forward passes.

:class:`MicroBatcher` uses a leader/follower design with no background
thread:

* the first request for a ``(model key, horizon)`` group becomes the
  **leader**: it lingers up to ``window_ms`` (cut short the moment the
  group hits ``max_batch``), then closes the group, runs one
  ``predict_batch`` over every member's history, and distributes the
  results;
* later requests arriving inside the window are **followers**: they
  append their history and block until the leader hands them their
  forecast.

A failing batch propagates the exception to every member.  Batch sizes
and the leader's linger are exported as histograms
(``repro_serving_batch_size``, ``repro_serving_batch_wait_seconds``), so
the E14 load benchmark can assert coalescing actually happened.

Chaos: every submit passes the ``serving.batch`` fault point (keyed by
the model key), so the resilience matrix can inject failures into the
batching path and assert clients get error envelopes, not hangs.
"""

from __future__ import annotations

import threading
import time

from .. import telemetry
from ..resilience.faults import fault_point

__all__ = ["MicroBatcher", "BATCH_SIZE_BUCKETS"]

#: Histogram buckets for the per-call coalesced batch size.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class _Request:
    """One caller's slot in a batch group."""

    __slots__ = ("history", "result", "error")

    def __init__(self, history):
        self.history = history
        self.result = None
        self.error = None


class _Group:
    """Requests coalescing toward one ``predict_batch`` call."""

    __slots__ = ("requests", "closed", "full", "done", "opened_at")

    def __init__(self, opened_at):
        self.requests = []
        self.closed = False
        self.full = threading.Event()   # max_batch reached: stop lingering
        self.done = threading.Event()   # results distributed
        self.opened_at = opened_at


class MicroBatcher:
    """Batch concurrent ``predict`` calls per (model key, horizon).

    Parameters
    ----------
    max_batch:
        Hard cap on histories per batched call; a full group executes
        immediately without waiting out the window.
    window_ms:
        Maximum linger of the first request in a group.  ``0`` disables
        coalescing (every request is a batch of one) without changing
        results — the knob trades a bounded latency floor for
        throughput.
    result_timeout_s:
        Upper bound a follower waits for its leader before giving up —
        strictly a hang backstop; the leader's own call is synchronous.
    """

    def __init__(self, max_batch=8, window_ms=2.0, result_timeout_s=120.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self.window_ms = max(float(window_ms), 0.0)
        self.result_timeout_s = float(result_timeout_s)
        self._groups = {}
        self._lock = threading.Lock()
        self.counters = {"requests": 0, "batches": 0, "batched_away": 0,
                         "errors": 0}

    def submit(self, key, model, history, horizon):
        """Forecast ``horizon`` steps from ``history``; may be coalesced.

        Blocks until the forecast is available (leader: after running
        the batch; follower: after the leader distributes results) and
        returns exactly what ``model.predict(history, horizon)`` would.
        """
        fault_point("serving.batch", key)
        group_key = (key, int(horizon))
        request = _Request(history)
        with self._lock:
            self.counters["requests"] += 1
            group = self._groups.get(group_key)
            if group is None or group.closed \
                    or len(group.requests) >= self.max_batch:
                group = _Group(opened_at=time.perf_counter())
                self._groups[group_key] = group
                leader = True
            else:
                leader = False
            group.requests.append(request)
            if len(group.requests) >= self.max_batch:
                group.closed = True
                group.full.set()
        if leader:
            self._lead(group_key, group, model, horizon)
        else:
            if not group.done.wait(timeout=self.result_timeout_s):
                raise TimeoutError(
                    f"microbatch leader for {key[:12]}/{horizon} did not "
                    f"deliver within {self.result_timeout_s}s")
        if request.error is not None:
            raise request.error
        return request.result

    def _lead(self, group_key, group, model, horizon):
        if self.window_ms > 0.0 and not group.full.is_set():
            group.full.wait(timeout=self.window_ms / 1000.0)
        with self._lock:
            group.closed = True
            if self._groups.get(group_key) is group:
                del self._groups[group_key]
            batch = list(group.requests)
        waited = time.perf_counter() - group.opened_at
        try:
            outputs = model.predict_batch([r.history for r in batch],
                                          horizon)
            if len(outputs) != len(batch):
                raise RuntimeError(
                    f"predict_batch returned {len(outputs)} forecasts "
                    f"for {len(batch)} histories")
            for req, out in zip(batch, outputs):
                req.result = out
        except BaseException as exc:  # noqa: BLE001 - fan the error out
            for req in batch:
                req.error = exc
            with self._lock:
                self.counters["errors"] += 1
        finally:
            with self._lock:
                self.counters["batches"] += 1
                self.counters["batched_away"] += len(batch) - 1
            group.done.set()
        telemetry.observe("repro_serving_batch_size", float(len(batch)),
                          buckets=BATCH_SIZE_BUCKETS,
                          help="Coalesced requests per predict_batch "
                               "call.")
        telemetry.observe("repro_serving_batch_wait_seconds", waited,
                          help="Leader linger before a microbatch "
                               "executed.")

    def stats(self):
        with self._lock:
            return dict(self.counters)
