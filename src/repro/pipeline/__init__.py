"""TFB benchmark pipeline: configs, runner, logging (one-click evaluation)."""

from .config import (BenchmarkConfig, DatasetSpec, MethodSpec, load_config,
                     loads_config)
from .logging import RunLogger
from .runner import BenchmarkRunner, ResultTable, run_one_click

__all__ = [
    "BenchmarkConfig", "MethodSpec", "DatasetSpec", "load_config",
    "loads_config", "RunLogger", "BenchmarkRunner", "ResultTable",
    "run_one_click",
]
