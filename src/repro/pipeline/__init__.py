"""TFB benchmark pipeline: configs, runner, logging (one-click evaluation)."""

from .config import (BenchmarkConfig, DatasetSpec, MethodSpec, load_config,
                     loads_config)
from .logging import FileSink, RunLogger
from .runner import (BenchmarkRunner, CellFailure, MergeConflict,
                     ResultTable, RunInterrupted, run_one_click)

__all__ = [
    "BenchmarkConfig", "MethodSpec", "DatasetSpec", "load_config",
    "loads_config", "RunLogger", "FileSink", "BenchmarkRunner",
    "ResultTable", "CellFailure", "MergeConflict", "RunInterrupted",
    "run_one_click",
]
