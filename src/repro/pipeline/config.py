"""Benchmark configuration: the file users edit for one-click evaluation.

Demo scenario S1: "Users need only edit the configuration file ... thus
achieving one click evaluation."  A config fully determines an experiment:
which methods, which datasets, which strategy/horizon/metrics, which
normalisation, and the seed.  Configs load from JSON or TOML and are
validated eagerly with actionable error messages.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..datasets.scalers import SCALERS
from ..datasets.split import SplitSpec
from ..evaluation.metrics import METRICS
from ..evaluation.strategies import STRATEGIES
from ..methods.registry import METHODS

__all__ = ["MethodSpec", "DatasetSpec", "BenchmarkConfig", "load_config",
           "loads_config"]


@dataclass(frozen=True)
class MethodSpec:
    """One method entry: registry name plus hyperparameter overrides."""

    name: str
    params: dict = field(default_factory=dict)

    def validate(self):
        if self.name not in METHODS:
            raise ValueError(
                f"unknown method {self.name!r}; known: {sorted(METHODS)}")


@dataclass(frozen=True)
class DatasetSpec:
    """Dataset selection: a registry suite or explicit series names.

    ``suite`` is one of ``univariate`` / ``multivariate``; ``names`` lists
    explicit registry series (``traffic_u0003``).  Exactly one must be set.
    """

    suite: str = ""
    names: tuple = ()
    per_domain: int = 2
    count: int = 5
    length: int = 512
    n_channels: int = 7
    domains: tuple = ()

    def validate(self):
        if bool(self.suite) == bool(self.names):
            raise ValueError(
                "dataset spec needs exactly one of 'suite' or 'names'")
        if self.suite and self.suite not in ("univariate", "multivariate"):
            raise ValueError(
                f"unknown suite {self.suite!r}; use 'univariate' or "
                "'multivariate'")

    def resolve(self, registry):
        """Materialise the selected series from a DatasetRegistry."""
        if self.names:
            return [registry.get(name, length=self.length)
                    for name in self.names]
        if self.suite == "univariate":
            return list(registry.univariate_suite(
                per_domain=self.per_domain, length=self.length,
                domains=list(self.domains) or None))
        return list(registry.multivariate_suite(
            count=self.count, length=self.length,
            n_channels=self.n_channels))


@dataclass(frozen=True)
class BenchmarkConfig:
    """Complete, validated benchmark experiment description."""

    methods: tuple
    datasets: DatasetSpec
    strategy: str = "rolling"
    lookback: int = 96
    horizon: int = 24
    stride: int = 0
    metrics: tuple = ("mae", "mse", "smape")
    scaler: str = "standard"
    drop_last: bool = False
    split: SplitSpec = field(default_factory=SplitSpec)
    seed: int = 7
    tag: str = "benchmark"
    dtype: str = "float64"

    def validate(self):
        if not self.methods:
            raise ValueError("config lists no methods")
        for spec in self.methods:
            spec.validate()
        self.datasets.validate()
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; known: "
                f"{sorted(STRATEGIES)}")
        for metric in self.metrics:
            if metric not in METRICS:
                raise ValueError(
                    f"unknown metric {metric!r}; known: {sorted(METRICS)}")
        if self.scaler.lower() not in SCALERS:
            raise ValueError(
                f"unknown scaler {self.scaler!r}; known: {sorted(SCALERS)}")
        if self.lookback <= 0 or self.horizon <= 0:
            raise ValueError("lookback and horizon must be positive")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"unknown dtype {self.dtype!r}; use 'float32' or 'float64'")
        return self

    def strategy_kwargs(self):
        kwargs = {
            "lookback": self.lookback,
            "horizon": self.horizon,
            "metrics": self.metrics,
            "scaler": self.scaler,
            "split": self.split,
            "drop_last": self.drop_last,
        }
        if self.strategy == "rolling" and self.stride:
            kwargs["stride"] = self.stride
        return kwargs

    def to_dict(self):
        out = asdict(self)
        out["methods"] = [asdict(m) for m in self.methods]
        out["datasets"] = asdict(self.datasets)
        out["split"] = asdict(self.split)
        return out

    def dumps(self):
        return json.dumps(self.to_dict(), indent=2)


def _from_dict(raw):
    methods = []
    for entry in raw.get("methods", []):
        if isinstance(entry, str):
            methods.append(MethodSpec(name=entry))
        else:
            methods.append(MethodSpec(name=entry["name"],
                                      params=dict(entry.get("params", {}))))
    ds_raw = dict(raw.get("datasets", {}))
    ds_raw["names"] = tuple(ds_raw.get("names", ()))
    ds_raw["domains"] = tuple(ds_raw.get("domains", ()))
    datasets = DatasetSpec(**ds_raw)
    split = SplitSpec(**raw["split"]) if "split" in raw else SplitSpec()
    keys = ("strategy", "lookback", "horizon", "stride", "metrics", "scaler",
            "drop_last", "seed", "tag", "dtype")
    extra = {k: raw[k] for k in keys if k in raw}
    if "metrics" in extra:
        extra["metrics"] = tuple(extra["metrics"])
    config = BenchmarkConfig(methods=tuple(methods), datasets=datasets,
                             split=split, **extra)
    return config.validate()


def loads_config(text, fmt="json"):
    """Parse a config from JSON or TOML text."""
    if fmt == "json":
        raw = json.loads(text)
    elif fmt == "toml":
        import tomllib
        raw = tomllib.loads(text)
    else:
        raise ValueError(f"unknown config format {fmt!r}")
    return _from_dict(raw)


def load_config(path):
    """Load a config file; the suffix picks the parser (.json / .toml)."""
    path = Path(path)
    fmt = "toml" if path.suffix.lower() == ".toml" else "json"
    return loads_config(path.read_text(encoding="utf-8"), fmt=fmt)
