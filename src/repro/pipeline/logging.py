"""Run logging: the reporting layer's experiment tracker.

TFB's reporting layer "includes a logging system for tracking experimental
information".  :class:`RunLogger` collects structured events in memory and
optionally mirrors them to a JSON-lines file, so a benchmark run leaves a
complete machine-readable trail.

The file sink keeps one lazily-opened append handle for the whole logger
family (children share it) instead of reopening the file per event, and
each record goes out as a single ``write()`` of one complete line in
append mode — so events written concurrently from worker processes or
threads interleave without corrupting each other.
"""

from __future__ import annotations

import atexit
import json
import threading
import time
import weakref
from pathlib import Path

__all__ = ["RunLogger", "FileSink"]

#: Sinks with an open handle; weakly held so garbage collection is not
#: blocked, drained by the atexit hook so a logger that was never used as
#: a context manager still releases (and flushes) its file on shutdown.
_OPEN_SINKS = weakref.WeakSet()


@atexit.register
def _close_open_sinks():
    for sink in list(_OPEN_SINKS):
        sink.close()


class FileSink:
    """Lazily-opened, lock-guarded append-mode JSONL sink.

    Each record goes out as one flushed ``write()`` of a complete line,
    so concurrent writers interleave without corruption and a crash can
    tear at most the final line — the property the resilience journal
    (:class:`~repro.resilience.RunJournal`) builds its write-ahead
    guarantee on.  ``close()`` is idempotent and shared across every
    logger in a :meth:`RunLogger.child` family; a sink left open at
    interpreter exit is closed by the module's ``atexit`` hook.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fh = None
        self._lock = threading.Lock()

    def write(self, record):
        # One write() call per complete line: O_APPEND keeps concurrent
        # writers from splicing into each other's records.
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if self._fh is None:
                self._fh = self.path.open("a", encoding="utf-8")
                _OPEN_SINKS.add(self)
            self._fh.write(line)
            self._fh.flush()

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            _OPEN_SINKS.discard(self)


class RunLogger:
    """Structured experiment logger.

    Events are dicts with ``ts`` (monotonic-ish wall time), ``level``,
    ``event`` and free-form payload keys.  A logger can be scoped with
    :meth:`child`, which prefixes every event.  When mirroring to a file,
    call :meth:`close` (or use the logger as a context manager) to release
    the shared append handle.
    """

    LEVELS = ("debug", "info", "warning", "error")

    def __init__(self, path=None, prefix="", _events=None, _sink=None):
        self.path = Path(path) if path else None
        self.prefix = prefix
        self.events = _events if _events is not None else []
        if _sink is not None:
            self._sink = _sink
        else:
            self._sink = FileSink(self.path) if self.path else None

    def child(self, prefix):
        """A scoped view sharing the same event buffer and file sink."""
        joined = f"{self.prefix}{prefix}." if prefix else self.prefix
        return RunLogger(path=self.path, prefix=joined, _events=self.events,
                         _sink=self._sink)

    def log(self, event, level="info", **payload):
        if level not in self.LEVELS:
            raise ValueError(f"unknown level {level!r}")
        record = {"ts": time.time(), "level": level,
                  "event": f"{self.prefix}{event}", **payload}
        self.events.append(record)
        if self._sink is not None:
            self._sink.write(record)
        return record

    def info(self, event, **payload):
        return self.log(event, level="info", **payload)

    def warning(self, event, **payload):
        return self.log(event, level="warning", **payload)

    def error(self, event, **payload):
        return self.log(event, level="error", **payload)

    def filter(self, event=None, level=None):
        """Events matching an event-name prefix and/or a level."""
        out = self.events
        if event is not None:
            out = [e for e in out if e["event"].startswith(event)]
        if level is not None:
            out = [e for e in out if e["level"] == level]
        return list(out)

    def timer(self, event, **payload):
        """Context manager logging the elapsed time of a block."""
        return _Timer(self, event, payload)

    def profile_summary(self, spans=None):
        """Aggregate the run's per-phase wall-clock breakdown.

        Returns ``{"tasks": n, "total_seconds": t, "phases": {phase: t}}``
        where each phase total sums that phase's wall-clock across every
        profiled (method, series) task.

        Two sources, same table: explicit ``run.profile`` events (emitted
        by ``run(profile=True)``) take precedence; otherwise the summary
        is computed from telemetry ``phase.*`` spans — either the
        ``spans`` argument or, when telemetry is enabled, the process
        collector — so a traced run gets the breakdown without
        re-running under ``--profile``.  Empty when neither exists.
        """
        phases = {}
        tasks = 0
        for event in self.filter(event="run.profile"):
            tasks += 1
            for key, value in event.items():
                if key.endswith("_seconds") and isinstance(value, (int, float)):
                    phase = key[:-len("_seconds")]
                    phases[phase] = phases.get(phase, 0.0) + float(value)
        if not tasks:
            from .. import telemetry
            span_list = spans if spans is not None else telemetry.spans()
            if span_list:
                return telemetry.profile_from_spans(span_list)
        return {"tasks": tasks,
                "total_seconds": round(sum(phases.values()), 6),
                "phases": {k: round(v, 6) for k, v in phases.items()}}

    def close(self):
        """Close the shared file handle (safe to call repeatedly)."""
        if self._sink is not None:
            self._sink.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __len__(self):
        return len(self.events)


class _Timer:
    def __init__(self, logger, event, payload):
        self.logger = logger
        self.event = event
        self.payload = payload
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        elapsed = time.perf_counter() - self._start
        status = "failed" if exc_type else "ok"
        self.logger.log(self.event, seconds=round(elapsed, 6),
                        status=status, **self.payload)
        return False
