"""The benchmark pipeline: one-click evaluation over methods × datasets.

"When users include their methods into the method layer along with a
configuration file, they can automatically run the pipeline to obtain
performance results."  :class:`BenchmarkRunner` materialises the datasets,
instantiates each method fresh per series (no state leaks between
datasets), applies the configured strategy, and returns a
:class:`ResultTable` the reporting layer and the knowledge base both
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.registry import DatasetRegistry
from ..evaluation.metrics import HIGHER_IS_BETTER
from ..evaluation.strategies import make_strategy
from ..methods.registry import create
from .config import BenchmarkConfig
from .logging import RunLogger

__all__ = ["BenchmarkRunner", "ResultTable", "run_one_click"]


@dataclass
class ResultTable:
    """Flat result records plus pivot/ranking helpers."""

    records: list = field(default_factory=list)

    def add(self, result):
        self.records.append(result)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def methods(self):
        return sorted({r.method for r in self.records})

    def series_names(self):
        return sorted({r.series for r in self.records})

    def pivot(self, metric):
        """Dict ``{series: {method: score}}`` for one metric."""
        table = {}
        for r in self.records:
            table.setdefault(r.series, {})[r.method] = r.scores.get(metric)
        return table

    def mean_scores(self, metric):
        """Mean score per method across all series (NaNs skipped)."""
        sums, counts = {}, {}
        for r in self.records:
            value = r.scores.get(metric)
            if value is None or not np.isfinite(value):
                continue
            sums[r.method] = sums.get(r.method, 0.0) + value
            counts[r.method] = counts.get(r.method, 0) + 1
        return {m: sums[m] / counts[m] for m in sums}

    def ranking(self, metric):
        """Methods sorted best-first by mean score."""
        means = self.mean_scores(metric)
        reverse = metric in HIGHER_IS_BETTER
        return sorted(means, key=means.get, reverse=reverse)

    def best_per_series(self, metric):
        """Dict ``{series: winning method}`` under one metric."""
        reverse = metric in HIGHER_IS_BETTER
        out = {}
        for series, row in self.pivot(metric).items():
            scored = {m: v for m, v in row.items()
                      if v is not None and np.isfinite(v)}
            if scored:
                out[series] = (max if reverse else min)(scored, key=scored.get)
        return out

    def to_rows(self):
        """Flatten to plain dict rows (for the knowledge base / SQL)."""
        rows = []
        for r in self.records:
            base = {"method": r.method, "series": r.series,
                    "horizon": r.horizon, "strategy": r.strategy,
                    "n_windows": r.n_windows,
                    "fit_seconds": r.fit_seconds,
                    "predict_seconds": r.predict_seconds}
            base.update({f"metric_{k}": v for k, v in r.scores.items()})
            rows.append(base)
        return rows


class BenchmarkRunner:
    """Drives a validated :class:`BenchmarkConfig` end to end."""

    def __init__(self, config, registry=None, logger=None):
        if not isinstance(config, BenchmarkConfig):
            raise TypeError("config must be a BenchmarkConfig")
        config.validate()
        self.config = config
        self.registry = registry or DatasetRegistry(seed=config.seed)
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()

    def _instantiate(self, spec):
        params = dict(spec.params)
        # Window-based methods inherit the config geometry unless the user
        # pinned their own.
        model = create(spec.name, **params)
        for attr, value in (("lookback", self.config.lookback),
                            ("horizon", self.config.horizon)):
            if hasattr(model, attr) and attr not in params:
                setattr(model, attr, value)
        return model

    def run(self, progress=None):
        """Execute the full methods × datasets grid; returns a ResultTable.

        Failures of individual (method, series) cells are logged and
        skipped rather than aborting the run — a long benchmark should
        not die on one unstable fit.
        """
        config = self.config
        series_list = config.datasets.resolve(self.registry)
        table = ResultTable()
        self.logger.info("run.start", tag=config.tag,
                         n_methods=len(config.methods),
                         n_series=len(series_list),
                         strategy=config.strategy, horizon=config.horizon)
        for series in series_list:
            for spec in config.methods:
                strategy = make_strategy(config.strategy,
                                         **config.strategy_kwargs())
                model = self._instantiate(spec)
                try:
                    with self.logger.timer("run.cell", method=spec.name,
                                           series=series.name):
                        result = strategy.evaluate(model, series)
                except Exception as exc:  # noqa: BLE001 - cell isolation
                    self.logger.error("run.cell_failed", method=spec.name,
                                      series=series.name, error=repr(exc))
                    continue
                table.add(result)
                if progress is not None:
                    progress(result)
        self.logger.info("run.done", n_results=len(table))
        return table


def run_one_click(config, registry=None, logger=None, progress=None):
    """The one-click evaluation entry point (demo scenario S1)."""
    return BenchmarkRunner(config, registry=registry,
                           logger=logger).run(progress=progress)
