"""The benchmark pipeline: one-click evaluation over methods × datasets.

"When users include their methods into the method layer along with a
configuration file, they can automatically run the pipeline to obtain
performance results."  :class:`BenchmarkRunner` materialises the datasets,
instantiates each method fresh per series (no state leaks between
datasets), applies the configured strategy, and returns a
:class:`ResultTable` the reporting layer and the knowledge base both
consume.

The grid no longer has to run serially: ``run(executor=..., cache=...)``
fans independent (method, series) cells out over a
:mod:`repro.runtime` executor and consults an
:class:`~repro.runtime.ArtifactCache` before paying for a fit.  Results
are assembled in grid order and the table sorts its output, so completion
order can never change downstream rankings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..datasets.registry import DatasetRegistry
from ..evaluation.metrics import HIGHER_IS_BETTER
from ..evaluation.strategies import make_strategy
from ..methods.registry import create
from ..runtime import MISSING, SerialExecutor, Task
from .config import BenchmarkConfig
from .logging import RunLogger

__all__ = ["BenchmarkRunner", "ResultTable", "run_one_click"]


def _record_sort_key(record):
    return (record.series, record.method, record.horizon, record.strategy)


@dataclass
class ResultTable:
    """Flat result records plus pivot/ranking helpers.

    Iteration and ``to_rows()`` are order-deterministic — records come out
    sorted by (series, method) regardless of insertion order, so parallel
    completion order cannot reorder reports or knowledge-base ingest.
    """

    records: list = field(default_factory=list)

    def add(self, result):
        self.records.append(result)

    def merge(self, other):
        """Fold another table's records into this one; returns self."""
        self.records.extend(other.records if isinstance(other, ResultTable)
                            else other)
        return self

    def sorted_records(self):
        """Records sorted by (series, method, horizon, strategy)."""
        return sorted(self.records, key=_record_sort_key)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.sorted_records())

    def methods(self):
        return sorted({r.method for r in self.records})

    def series_names(self):
        return sorted({r.series for r in self.records})

    def pivot(self, metric):
        """Dict ``{series: {method: score}}`` for one metric."""
        table = {}
        for r in self.sorted_records():
            table.setdefault(r.series, {})[r.method] = r.scores.get(metric)
        return table

    def mean_scores(self, metric):
        """Mean score per method across all series (NaNs skipped)."""
        sums, counts = {}, {}
        for r in self.records:
            value = r.scores.get(metric)
            if value is None or not np.isfinite(value):
                continue
            sums[r.method] = sums.get(r.method, 0.0) + value
            counts[r.method] = counts.get(r.method, 0) + 1
        return {m: sums[m] / counts[m] for m in sums}

    def ranking(self, metric):
        """Methods sorted best-first by mean score."""
        means = self.mean_scores(metric)
        reverse = metric in HIGHER_IS_BETTER
        return sorted(means, key=means.get, reverse=reverse)

    def best_per_series(self, metric):
        """Dict ``{series: winning method}`` under one metric."""
        reverse = metric in HIGHER_IS_BETTER
        out = {}
        for series, row in self.pivot(metric).items():
            scored = {m: v for m, v in row.items()
                      if v is not None and np.isfinite(v)}
            if scored:
                out[series] = (max if reverse else min)(scored, key=scored.get)
        return out

    def to_rows(self, include_timings=True):
        """Flatten to plain dict rows (for the knowledge base / SQL).

        ``include_timings=False`` drops the wall-clock measurement fields
        (``fit_seconds``/``predict_seconds``), leaving only the
        deterministic outcome — two runs of the same config compare equal
        row-for-row regardless of worker count.
        """
        rows = []
        for r in self.sorted_records():
            base = {"method": r.method, "series": r.series,
                    "horizon": r.horizon, "strategy": r.strategy,
                    "n_windows": r.n_windows}
            if include_timings:
                base["fit_seconds"] = r.fit_seconds
                base["predict_seconds"] = r.predict_seconds
            base.update({f"metric_{k}": v for k, v in r.scores.items()})
            rows.append(base)
        return rows


def _instantiate(config, spec):
    """Build a method instance for one cell, applying config geometry."""
    params = dict(spec.params)
    # Window-based methods inherit the config geometry unless the user
    # pinned their own; the same rule applies the config dtype policy to
    # methods that support one (the deep forecasters).
    model = create(spec.name, **params)
    for attr, value in (("lookback", config.lookback),
                        ("horizon", config.horizon),
                        ("dtype", config.dtype)):
        if hasattr(model, attr) and attr not in params:
            setattr(model, attr, value)
    return model


def _evaluate_cell(config, spec, series):
    """Evaluate one (method, series) cell.

    Module-level so :class:`~repro.runtime.ProcessExecutor` workers can
    pickle it; everything it needs travels in the arguments.
    """
    strategy = make_strategy(config.strategy, **config.strategy_kwargs())
    model = _instantiate(config, spec)
    return strategy.evaluate(model, series)


def _cell_key(config, spec, series):
    """Stable task key — also the seed source, so it must not depend on
    submission order or process identity.  The dtype enters the key only
    when it differs from the float64 default, preserving the seeds (and
    therefore the results) of every pre-existing float64 run."""
    key = (f"{config.tag}|{series.name}|{spec.name}"
           f"|{config.strategy}|h{config.horizon}")
    if config.dtype != "float64":
        key += f"|{config.dtype}"
    return key


class BenchmarkRunner:
    """Drives a validated :class:`BenchmarkConfig` end to end."""

    def __init__(self, config, registry=None, logger=None):
        if not isinstance(config, BenchmarkConfig):
            raise TypeError("config must be a BenchmarkConfig")
        config.validate()
        self.config = config
        self.registry = registry or DatasetRegistry(seed=config.seed)
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()

    def _instantiate(self, spec):
        return _instantiate(self.config, spec)

    def _cache_key(self, cache, spec, series):
        return cache.key(spec.name, spec.params, series.name, series.values,
                         series.freq, self.config.strategy,
                         self.config.strategy_kwargs(), self.config.dtype)

    def run(self, progress=None, executor=None, cache=None, profile=False):
        """Execute the full methods × datasets grid; returns a ResultTable.

        Parameters
        ----------
        executor:
            A :mod:`repro.runtime` executor; defaults to a
            :class:`SerialExecutor` seeded from the config.  Results are
            identical for any worker count because every cell's RNG seed
            derives from its stable task key.
        cache:
            An optional :class:`~repro.runtime.ArtifactCache`; hits skip
            the fit entirely and misses are stored after evaluation.
        profile:
            When True, emit one structured ``run.profile`` event per
            result carrying the strategy's per-phase wall-clock breakdown
            (data preparation, fit, predict, metrics); aggregate with
            :meth:`RunLogger.profile_summary`.

        Failures of individual (method, series) cells are retried by the
        executor, then logged as structured ``run.cell_failed`` events and
        skipped rather than aborting the run — a long benchmark should not
        die on one unstable fit.
        """
        with telemetry.span("run", tag=self.config.tag,
                            strategy=self.config.strategy,
                            horizon=self.config.horizon):
            return self._run(progress, executor, cache, profile)

    def _run(self, progress, executor, cache, profile):
        config = self.config
        if executor is None:
            executor = SerialExecutor(base_seed=config.seed)
        series_list = config.datasets.resolve(self.registry)
        cells = [(series, spec)
                 for series in series_list for spec in config.methods]
        self.logger.info("run.start", tag=config.tag,
                         n_methods=len(config.methods),
                         n_series=len(series_list),
                         strategy=config.strategy, horizon=config.horizon,
                         executor=executor.kind,
                         workers=getattr(executor, "workers", 1),
                         cached=cache is not None)
        slots = [None] * len(cells)
        pending = []  # (slot index, Task, cache key)
        for i, (series, spec) in enumerate(cells):
            cache_key = None
            if cache is not None:
                cache_key = self._cache_key(cache, spec, series)
                hit = cache.get(cache_key)
                if hit is not MISSING:
                    slots[i] = hit
                    self.logger.info("run.cache_hit", method=spec.name,
                                     series=series.name)
                    telemetry.inc("repro_run_cells_total", status="cached",
                                  help="Benchmark grid cells by outcome.")
                    continue
            task = Task(key=_cell_key(config, spec, series),
                        fn=_evaluate_cell, args=(config, spec, series))
            pending.append((i, task, cache_key))
        if pending:
            outcomes = executor.map_tasks([task for _, task, _ in pending])
            for (i, _task, cache_key), outcome in zip(pending, outcomes):
                series, spec = cells[i]
                if outcome.ok:
                    slots[i] = outcome.value
                    self.logger.info("run.cell", method=spec.name,
                                     series=series.name, status="ok",
                                     seconds=round(outcome.seconds, 6),
                                     attempts=outcome.attempts)
                    telemetry.inc("repro_run_cells_total", status="ok",
                                  help="Benchmark grid cells by outcome.")
                    if cache is not None:
                        cache.put(cache_key, outcome.value)
                else:
                    self.logger.error("run.cell_failed", method=spec.name,
                                      series=series.name,
                                      error=outcome.error.error,
                                      error_type=outcome.error.error_type,
                                      attempts=outcome.error.attempts)
                    telemetry.inc("repro_run_cells_total", status="failed",
                                  help="Benchmark grid cells by outcome.")
        table = ResultTable()
        for result in slots:
            if result is None:
                continue
            table.add(result)
            if profile:
                payload = {f"{phase}_seconds": round(seconds, 6)
                           for phase, seconds
                           in getattr(result, "phase_seconds", {}).items()}
                self.logger.info("run.profile", method=result.method,
                                 series=result.series, **payload)
            if progress is not None:
                progress(result)
        done_payload = {"n_results": len(table)}
        if cache is not None:
            done_payload["cache"] = cache.stats()
        self.logger.info("run.done", **done_payload)
        return table


def run_one_click(config, registry=None, logger=None, progress=None,
                  executor=None, cache=None, workers=None, profile=False):
    """The one-click evaluation entry point (demo scenario S1).

    ``workers`` is a convenience: ``workers > 1`` without an explicit
    ``executor`` selects a :class:`~repro.runtime.ProcessExecutor`.
    """
    if executor is None and workers and workers > 1:
        from ..runtime import default_executor
        executor = default_executor(workers=workers, base_seed=config.seed)
    return BenchmarkRunner(config, registry=registry, logger=logger).run(
        progress=progress, executor=executor, cache=cache, profile=profile)
