"""The benchmark pipeline: one-click evaluation over methods × datasets.

"When users include their methods into the method layer along with a
configuration file, they can automatically run the pipeline to obtain
performance results."  :class:`BenchmarkRunner` materialises the datasets,
instantiates each method fresh per series (no state leaks between
datasets), applies the configured strategy, and returns a
:class:`ResultTable` the reporting layer and the knowledge base both
consume.

The grid no longer has to run serially: ``run(executor=..., cache=...)``
fans independent (method, series) cells out over a
:mod:`repro.runtime` executor and consults an
:class:`~repro.runtime.ArtifactCache` before paying for a fit.  Results
are assembled in grid order and the table sorts its output, so completion
order can never change downstream rankings.

Resilience (PR 4): failures are first-class outcomes, not silent holes.

* Every cell that does not produce a result leaves a structured
  :class:`CellFailure` on the table (``failed`` / ``quarantined`` /
  ``cancelled`` / ``deadline`` / ``interrupted``) so reports and the
  jobs API can show *why* a row is missing.
* ``run(journal=...)`` write-ahead-journals every cell transition
  (:class:`~repro.resilience.RunJournal`); ``run(resume=...)`` replays a
  journal and skips completed cells whose content fingerprints still
  match, which is what powers crash-safe ``bench --resume``.
* ``run(policy=...)`` consults a
  :class:`~repro.resilience.FailurePolicy` between dispatch waves: a
  tripped per-method circuit breaker quarantines that method's remaining
  cells, and an expired deadline stops scheduling cleanly.
* ``run(cancel=...)`` takes a :class:`threading.Event`; setting it stops
  the grid between waves with partial results preserved (cooperative
  cancellation for background jobs).
* Ctrl-C raises :class:`RunInterrupted` carrying the partial table, so
  the CLI can flush results and print the resume command before exiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..datasets.registry import DatasetRegistry
from ..evaluation.metrics import HIGHER_IS_BETTER
from ..evaluation.strategies import make_strategy
from ..methods.registry import create
from ..runtime import (MISSING, SerialExecutor, SharedArrayStore, Task,
                       fingerprint, resolve)
from .config import BenchmarkConfig
from .logging import RunLogger

__all__ = ["BenchmarkRunner", "ResultTable", "CellFailure",
           "MergeConflict", "RunInterrupted", "run_one_click"]

#: Cell outcomes that are failures (everything except a scored result).
FAILURE_STATUSES = ("failed", "quarantined", "cancelled", "deadline",
                    "interrupted")


def _record_sort_key(record):
    return (record.series, record.method, record.horizon, record.strategy)


class MergeConflict(ValueError):
    """Two records for the same grid cell disagree on content.

    The determinism contract says a cell's result is a pure function of
    its key, so duplicates (a distributed work-steal race delivering the
    same cell from two workers) must be bit-identical.  A divergent
    duplicate is a real bug and must never be silently averaged away or
    last-writer-wins'd into the table.
    """


def _same_outcome(a, b):
    """Content equality for two result records (timings excluded).

    Compares the deterministic outcome — ``n_windows`` and every score,
    with NaN treated as equal to NaN — and ignores wall-clock fields,
    which legitimately differ between two computations of the same cell.
    """
    if a is b:
        return True
    if getattr(a, "n_windows", None) != getattr(b, "n_windows", None):
        return False
    scores_a = dict(getattr(a, "scores", {}) or {})
    scores_b = dict(getattr(b, "scores", {}) or {})
    if set(scores_a) != set(scores_b):
        return False
    for name, va in scores_a.items():
        vb = scores_b[name]
        if va == vb:
            continue
        try:
            if np.isnan(va) and np.isnan(vb):
                continue
        except TypeError:
            pass
        return False
    return True


@dataclass(frozen=True)
class CellFailure:
    """One grid cell that produced no result, and why.

    ``status`` is one of :data:`FAILURE_STATUSES`: ``failed`` (retries
    exhausted), ``quarantined`` (circuit breaker open for the method),
    ``cancelled`` (cooperative cancel or Ctrl-C before scheduling),
    ``deadline`` (run deadline expired before scheduling) or
    ``interrupted`` (in flight when Ctrl-C landed).
    """

    method: str
    series: str
    horizon: int
    strategy: str
    status: str = "failed"
    error: str = ""
    error_type: str = ""
    attempts: int = 0

    def to_row(self):
        return {"method": self.method, "series": self.series,
                "horizon": self.horizon, "strategy": self.strategy,
                "status": self.status, "error": self.error,
                "error_type": self.error_type, "attempts": self.attempts}


class RunInterrupted(KeyboardInterrupt):
    """Ctrl-C during a run; carries the partial :class:`ResultTable`.

    Subclasses ``KeyboardInterrupt`` so generic ``except Exception``
    blocks cannot swallow it on the way to the CLI, which flushes the
    partial table, prints the resume command and exits 130.
    """

    def __init__(self, table, message="benchmark run interrupted"):
        super().__init__(message)
        self.table = table


@dataclass
class ResultTable:
    """Flat result records plus pivot/ranking helpers.

    Iteration and ``to_rows()`` are order-deterministic — records come out
    sorted by (series, method) regardless of insertion order, so parallel
    completion order cannot reorder reports or knowledge-base ingest.

    ``failures`` carries the cells that did *not* produce a result as
    :class:`CellFailure` records; score/pivot/ranking helpers ignore
    them, while reports and the jobs API render them as a failure panel
    instead of silently dropping rows.  ``len(table)`` counts successful
    records only, preserving the pre-resilience contract.
    """

    records: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    def add(self, result):
        self.records.append(result)

    def add_failure(self, failure):
        """Record a cell that produced no result."""
        self.failures.append(failure)

    def merge(self, other):
        """Fold another table's records into this one; returns self.

        Conflict semantics (a distributed grid can deliver the same
        cell twice via a work-steal race, and a failure can race a
        success across workers):

        * two records for the same ``(series, method, horizon,
          strategy)`` cell must be content-identical — the duplicate is
          dropped; a divergent duplicate raises :class:`MergeConflict`;
        * :class:`CellFailure` rows never overwrite (or coexist with) a
          successful record for the same cell, regardless of which
          order the two tables are merged in;
        * duplicate failures for one cell keep the first seen.
        """
        if isinstance(other, ResultTable):
            new_records, new_failures = other.records, other.failures
        else:
            new_records, new_failures = list(other), ()
        existing = {_record_sort_key(r): r for r in self.records}
        for record in new_records:
            key = _record_sort_key(record)
            prior = existing.get(key)
            if prior is None:
                self.records.append(record)
                existing[key] = record
            elif not _same_outcome(prior, record):
                raise MergeConflict(
                    f"divergent duplicate result for cell {key!r}: "
                    f"{prior.scores!r} != {record.scores!r}")
        if new_failures or self.failures:
            kept, seen = [], set()
            for failure in (*self.failures, *new_failures):
                key = _record_sort_key(failure)
                if key in existing or key in seen:
                    continue
                seen.add(key)
                kept.append(failure)
            self.failures = kept
        return self

    def sorted_records(self):
        """Records sorted by (series, method, horizon, strategy)."""
        return sorted(self.records, key=_record_sort_key)

    def sorted_failures(self):
        """Failures sorted by (series, method, horizon, strategy)."""
        return sorted(self.failures, key=_record_sort_key)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.sorted_records())

    def methods(self):
        return sorted({r.method for r in self.records})

    def series_names(self):
        return sorted({r.series for r in self.records})

    def status_counts(self):
        """``{status: count}`` over successes (``ok``) and failures."""
        counts = {"ok": len(self.records)} if self.records else {}
        for failure in self.failures:
            counts[failure.status] = counts.get(failure.status, 0) + 1
        return counts

    def pivot(self, metric):
        """Dict ``{series: {method: score}}`` for one metric."""
        table = {}
        for r in self.sorted_records():
            table.setdefault(r.series, {})[r.method] = r.scores.get(metric)
        return table

    def mean_scores(self, metric):
        """Mean score per method across all series (NaNs skipped)."""
        sums, counts = {}, {}
        for r in self.records:
            value = r.scores.get(metric)
            if value is None or not np.isfinite(value):
                continue
            sums[r.method] = sums.get(r.method, 0.0) + value
            counts[r.method] = counts.get(r.method, 0) + 1
        return {m: sums[m] / counts[m] for m in sums}

    def ranking(self, metric):
        """Methods sorted best-first by mean score."""
        means = self.mean_scores(metric)
        reverse = metric in HIGHER_IS_BETTER
        return sorted(means, key=means.get, reverse=reverse)

    def best_per_series(self, metric):
        """Dict ``{series: winning method}`` under one metric."""
        reverse = metric in HIGHER_IS_BETTER
        out = {}
        for series, row in self.pivot(metric).items():
            scored = {m: v for m, v in row.items()
                      if v is not None and np.isfinite(v)}
            if scored:
                out[series] = (max if reverse else min)(scored, key=scored.get)
        return out

    def to_rows(self, include_timings=True):
        """Flatten to plain dict rows (for the knowledge base / SQL).

        ``include_timings=False`` drops the wall-clock measurement fields
        (``fit_seconds``/``predict_seconds``), leaving only the
        deterministic outcome — two runs of the same config compare equal
        row-for-row regardless of worker count.
        """
        rows = []
        for r in self.sorted_records():
            base = {"method": r.method, "series": r.series,
                    "horizon": r.horizon, "strategy": r.strategy,
                    "n_windows": r.n_windows}
            if include_timings:
                base["fit_seconds"] = r.fit_seconds
                base["predict_seconds"] = r.predict_seconds
            base.update({f"metric_{k}": v for k, v in r.scores.items()})
            rows.append(base)
        return rows

    def failure_rows(self):
        """Failures flattened to plain dict rows, in sorted order."""
        return [f.to_row() for f in self.sorted_failures()]


def _instantiate(config, spec):
    """Build a method instance for one cell, applying config geometry."""
    params = dict(spec.params)
    # Window-based methods inherit the config geometry unless the user
    # pinned their own; the same rule applies the config dtype policy to
    # methods that support one (the deep forecasters).
    model = create(spec.name, **params)
    for attr, value in (("lookback", config.lookback),
                        ("horizon", config.horizon),
                        ("dtype", config.dtype)):
        if hasattr(model, attr) and attr not in params:
            setattr(model, attr, value)
    return model


def _evaluate_cell(config, spec, series):
    """Evaluate one (method, series) cell.

    Module-level so :class:`~repro.runtime.ProcessExecutor` workers can
    pickle it.  ``config`` and ``series`` may arrive as dataplane refs
    (a per-run :class:`~repro.runtime.BlobRef` and a per-dataset
    :class:`~repro.runtime.SeriesRef`); :func:`~repro.runtime.resolve`
    rehydrates them through the worker's attach cache and passes plain
    objects straight through, so the cell body is payload-agnostic.
    """
    config = resolve(config)
    series = resolve(series)
    strategy = make_strategy(config.strategy, **config.strategy_kwargs())
    model = _instantiate(config, spec)
    return strategy.evaluate(model, series)


def _cell_key(config, spec, series):
    """Stable task key — also the seed source, so it must not depend on
    submission order or process identity.  The dtype enters the key only
    when it differs from the float64 default, preserving the seeds (and
    therefore the results) of every pre-existing float64 run."""
    key = (f"{config.tag}|{series.name}|{spec.name}"
           f"|{config.strategy}|h{config.horizon}")
    if config.dtype != "float64":
        key += f"|{config.dtype}"
    return key


@dataclass
class _PendingCell:
    """Bookkeeping for one not-yet-satisfied grid cell."""

    index: int
    key: str
    fingerprint: str
    cache_key: str
    task: Task


class BenchmarkRunner:
    """Drives a validated :class:`BenchmarkConfig` end to end."""

    def __init__(self, config, registry=None, logger=None):
        if not isinstance(config, BenchmarkConfig):
            raise TypeError("config must be a BenchmarkConfig")
        config.validate()
        self.config = config
        self.registry = registry or DatasetRegistry(seed=config.seed)
        # Note: an empty RunLogger is falsy (len 0), so test identity.
        self.logger = logger if logger is not None else RunLogger()

    def _instantiate(self, spec):
        return _instantiate(self.config, spec)

    def _cache_key(self, cache, spec, series):
        return cache.key(spec.name, spec.params, series.name, series.values,
                         series.freq, self.config.strategy,
                         self.config.strategy_kwargs(), self.config.dtype)

    def config_fingerprint(self):
        """Content fingerprint of the full config (binds journals)."""
        return fingerprint(self.config.to_dict())

    def cell_fingerprint(self, spec, series):
        """Content fingerprint of one cell — everything that determines
        its result.  A journaled cell is only resumed when this matches,
        so edited configs or regenerated data can never smuggle stale
        results into a resumed run."""
        return fingerprint(spec.name, spec.params, series.name,
                           series.values, series.freq, self.config.strategy,
                           self.config.strategy_kwargs(), self.config.dtype)

    def prepare_grid(self, cache=None, resume=None, journal=None,
                     progress=None, executor_kind="external"):
        """Resolve the grid without executing anything.

        The entry point for external schedulers (the distributed
        :class:`~repro.runtime.distributed.Coordinator`): returns
        ``(cells, slots, pending)`` where ``cells`` is the full
        ``(series, spec)`` grid in order, ``slots`` already holds the
        results satisfied from the resume journal and the artifact
        cache (journaled and reported through ``progress`` exactly as
        :meth:`run` would), and ``pending`` lists the remaining work —
        each entry carrying the stable cell key, content fingerprint
        and cache key the scheduler needs.  The same resume-journal
        config-fingerprint check applies, and ``journal`` gets the
        ``run_start`` header, so a crashed external run resumes through
        the ordinary ``bench --resume`` machinery.
        """
        config = self.config
        series_list = config.datasets.resolve(self.registry)
        cells = [(series, spec)
                 for series in series_list for spec in config.methods]
        config_fp = self.config_fingerprint()
        if resume is not None and not resume.matches_config(config_fp):
            raise ValueError(
                "resume journal was written by a different configuration "
                f"(journal {resume.config_fingerprint!r:.12} != run "
                f"{config_fp!r:.12}); refusing to mix results")
        if journal is not None:
            journal.start_run(config_fp, tag=config.tag,
                              n_cells=len(cells), executor=executor_kind,
                              resumed=resume is not None)
        slots = [None] * len(cells)
        pending = self._scan(cells, cache, resume, journal, slots, progress)
        return cells, slots, pending

    def run(self, progress=None, executor=None, cache=None, profile=False,
            journal=None, resume=None, policy=None, cancel=None,
            dataplane=None):
        """Execute the full methods × datasets grid; returns a ResultTable.

        Parameters
        ----------
        executor:
            A :mod:`repro.runtime` executor; defaults to a
            :class:`SerialExecutor` seeded from the config.  Results are
            identical for any worker count because every cell's RNG seed
            derives from its stable task key.
        cache:
            An optional :class:`~repro.runtime.ArtifactCache`; hits skip
            the fit entirely and misses are stored after evaluation.
        profile:
            When True, emit one structured ``run.profile`` event per
            result carrying the strategy's per-phase wall-clock breakdown
            (data preparation, fit, predict, metrics); aggregate with
            :meth:`RunLogger.profile_summary`.
        journal:
            An optional :class:`~repro.resilience.RunJournal`; every cell
            transition is write-ahead journaled so a crashed run can be
            resumed.
        resume:
            An optional :class:`~repro.resilience.JournalState` replayed
            from a previous run's journal; completed cells with matching
            fingerprints are restored without re-executing.
        policy:
            An optional :class:`~repro.resilience.FailurePolicy`
            (per-method circuit breaker and/or run deadline), consulted
            between dispatch waves.
        cancel:
            An optional :class:`threading.Event`; once set, no further
            cells are scheduled and the run returns partial results with
            the remainder recorded as ``cancelled``.
        dataplane:
            Zero-copy data-plane control.  ``None`` (default) publishes
            datasets into a run-scoped
            :class:`~repro.runtime.SharedArrayStore` only when the
            executor is a process pool — serial and thread executors
            share memory already, so they keep the plain in-process
            payloads.  ``True`` forces a store, ``False`` disables it
            (the ``bench --no-dataplane`` escape hatch), and an existing
            :class:`~repro.runtime.SharedArrayStore` is used as-is
            without being closed (how the server shares one store across
            background jobs).

        Failures of individual (method, series) cells are retried by the
        executor, then logged as structured ``run.cell_failed`` events and
        recorded on the table as :class:`CellFailure` rows rather than
        aborting the run — a long benchmark should not die on one
        unstable fit.
        """
        with telemetry.span("run", tag=self.config.tag,
                            strategy=self.config.strategy,
                            horizon=self.config.horizon):
            return self._run(progress, executor, cache, profile, journal,
                             resume, policy, cancel, dataplane)

    # -- internals -------------------------------------------------------

    def _cell_count(self, status, n=1):
        telemetry.inc("repro_run_cells_total", n, status=status,
                      help="Benchmark grid cells by outcome.")

    def _scan(self, cells, cache, resume, journal, slots, progress,
              store=None):
        """Satisfy cells from the resume journal and the cache; returns
        the remaining work as :class:`_PendingCell` entries.

        With a dataplane ``store``, pending tasks carry a per-run config
        :class:`~repro.runtime.BlobRef` and per-dataset
        :class:`~repro.runtime.SeriesRef` handles instead of the pickled
        config and arrays — the task *keys* (and therefore every derived
        seed) are computed from the real objects either way, so results
        are bitwise independent of the payload form.
        """
        config = self.config
        config_ref = None
        pending = []
        for i, (series, spec) in enumerate(cells):
            key = _cell_key(config, spec, series)
            cell_fp = self.cell_fingerprint(spec, series)
            if resume is not None:
                prior = resume.result_for(key, cell_fp)
                if prior is not None:
                    slots[i] = prior
                    self.logger.info("run.resume_hit", method=spec.name,
                                     series=series.name)
                    self._cell_count("resumed")
                    if journal is not None:
                        journal.cell_skipped(key, cell_fp, reason="resume")
                    if progress is not None:
                        progress(prior)
                    continue
            cache_key = None
            if cache is not None:
                cache_key = self._cache_key(cache, spec, series)
                hit = cache.get(cache_key)
                if hit is not MISSING:
                    slots[i] = hit
                    self.logger.info("run.cache_hit", method=spec.name,
                                     series=series.name)
                    self._cell_count("cached")
                    if journal is not None:
                        journal.cell_done(key, cell_fp, hit)
                    if progress is not None:
                        progress(hit)
                    continue
            if store is not None:
                if config_ref is None:  # published once, lazily
                    config_ref = store.publish_blob(config)
                task_args = (config_ref, spec,
                             store.publish_series(series))
            else:
                task_args = (config, spec, series)
            task = Task(key=key, fn=_evaluate_cell, args=task_args)
            pending.append(_PendingCell(index=i, key=key,
                                        fingerprint=cell_fp,
                                        cache_key=cache_key, task=task))
        return pending

    def _quarantine(self, entry, spec, series, journal, failures):
        failures[entry.index] = CellFailure(
            method=spec.name, series=series.name,
            horizon=self.config.horizon, strategy=self.config.strategy,
            status="quarantined",
            error=f"circuit breaker open for method {spec.name!r}",
            error_type="Quarantined")
        self.logger.warning("run.cell_quarantined", method=spec.name,
                            series=series.name)
        self._cell_count("quarantined")
        if journal is not None:
            journal.cell_quarantined(entry.key, entry.fingerprint,
                                     method=spec.name)

    def _absorb_outcome(self, entry, outcome, cells, cache, journal,
                        policy, slots, failures, progress):
        """Fold one executor outcome into slots/failures + side channels."""
        series, spec = cells[entry.index]
        if outcome.ok:
            slots[entry.index] = outcome.value
            self.logger.info("run.cell", method=spec.name,
                             series=series.name, status="ok",
                             seconds=round(outcome.seconds, 6),
                             attempts=outcome.attempts)
            self._cell_count("ok")
            if journal is not None:
                journal.cell_done(entry.key, entry.fingerprint,
                                  outcome.value)
            if cache is not None:
                cache.put(entry.cache_key, outcome.value)
            if policy is not None:
                policy.record(spec.name, ok=True)
            if progress is not None:
                progress(outcome.value)
            return
        failures[entry.index] = CellFailure(
            method=spec.name, series=series.name,
            horizon=self.config.horizon, strategy=self.config.strategy,
            status="failed", error=outcome.error.error,
            error_type=outcome.error.error_type,
            attempts=outcome.error.attempts)
        self.logger.error("run.cell_failed", method=spec.name,
                          series=series.name, error=outcome.error.error,
                          error_type=outcome.error.error_type,
                          attempts=outcome.error.attempts)
        self._cell_count("failed")
        if journal is not None:
            journal.cell_failed(entry.key, entry.fingerprint,
                                error=outcome.error.error,
                                error_type=outcome.error.error_type,
                                attempts=outcome.error.attempts)
        if policy is not None and policy.record(spec.name, ok=False):
            self.logger.warning("run.quarantine_tripped", method=spec.name,
                                after=policy.breaker.threshold)

    def _mark_unrun(self, entries, cells, status, failures, slots):
        """Record cells that were never scheduled (cancel/deadline/^C)."""
        for entry in entries:
            if slots[entry.index] is not None or entry.index in failures:
                continue
            series, spec = cells[entry.index]
            failures[entry.index] = CellFailure(
                method=spec.name, series=series.name,
                horizon=self.config.horizon,
                strategy=self.config.strategy, status=status,
                error=f"not scheduled: run {status}")
            self._cell_count(status)

    def _open_store(self, dataplane, executor):
        """Resolve the ``dataplane`` knob to ``(store, owns_store)``."""
        if isinstance(dataplane, SharedArrayStore):
            return dataplane, False
        if dataplane is None:
            # Auto: only process pools cross an address-space boundary;
            # serial/thread runs keep plain payloads (zero overhead).
            if executor.kind != "process":
                return None, False
        elif not dataplane:
            return None, False
        return SharedArrayStore(), True

    def _run(self, progress, executor, cache, profile, journal, resume,
             policy, cancel, dataplane=None):
        config = self.config
        if executor is None:
            executor = SerialExecutor(base_seed=config.seed)
        series_list = config.datasets.resolve(self.registry)
        cells = [(series, spec)
                 for series in series_list for spec in config.methods]
        config_fp = self.config_fingerprint()
        if resume is not None and not resume.matches_config(config_fp):
            raise ValueError(
                "resume journal was written by a different configuration "
                f"(journal {resume.config_fingerprint!r:.12} != run "
                f"{config_fp!r:.12}); refusing to mix results")
        if journal is not None:
            journal.start_run(config_fp, tag=config.tag,
                              n_cells=len(cells), executor=executor.kind,
                              resumed=resume is not None)
        store, owns_store = self._open_store(dataplane, executor)
        self.logger.info("run.start", tag=config.tag,
                         n_methods=len(config.methods),
                         n_series=len(series_list),
                         strategy=config.strategy, horizon=config.horizon,
                         executor=executor.kind,
                         workers=getattr(executor, "workers", 1),
                         cached=cache is not None,
                         journaled=journal is not None,
                         resumed=resume is not None,
                         dataplane=(store.backend if store is not None
                                    else "off"))
        slots = [None] * len(cells)
        failures = {}
        stop_status = None
        interrupted = False
        idx = 0
        try:
            pending = self._scan(cells, cache, resume, journal, slots,
                                 progress, store=store)

            # Dispatch in waves.  With no between-wave decisions to make
            # the whole batch goes out at once (identical to the
            # pre-resilience behaviour, and pool executors pay one pool
            # spin-up).  With a policy or a cancel event, waves are sized
            # to the executor's parallelism so breaker/deadline/cancel
            # checks run while the grid is still in flight.
            responsive = policy is not None or cancel is not None
            workers = max(int(getattr(executor, "workers", 1) or 1), 1)
            wave_size = max(workers, 1) if responsive \
                else max(len(pending), 1)
            if responsive and executor.kind != "serial":
                wave_size = workers * 2  # amortise pool spin-up per wave
            while idx < len(pending):
                if cancel is not None and cancel.is_set():
                    stop_status = "cancelled"
                    break
                if policy is not None and policy.out_of_time():
                    stop_status = "deadline"
                    break
                wave = []
                while idx < len(pending) and len(wave) < wave_size:
                    entry = pending[idx]
                    idx += 1
                    series, spec = cells[entry.index]
                    if policy is not None and policy.quarantined(spec.name):
                        self._quarantine(entry, spec, series, journal,
                                         failures)
                        continue
                    wave.append(entry)
                if not wave:
                    continue
                if journal is not None:
                    for entry in wave:
                        journal.cell_start(entry.key, entry.fingerprint)
                try:
                    outcomes = executor.map_tasks([e.task for e in wave])
                except KeyboardInterrupt:
                    interrupted = True
                    stop_status = "interrupted"
                    self._mark_unrun(wave, cells, "interrupted", failures,
                                     slots)
                    break
                for entry, outcome in zip(wave, outcomes):
                    self._absorb_outcome(entry, outcome, cells, cache,
                                         journal, policy, slots, failures,
                                         progress)
            if stop_status is not None:
                remainder_status = ("deadline" if stop_status == "deadline"
                                    else "cancelled")
                self._mark_unrun(pending[idx:], cells, remainder_status,
                                 failures, slots)
                self.logger.warning(f"run.{stop_status}",
                                    n_unscheduled=len(pending) - idx)
                if journal is not None:
                    journal.run_interrupted(reason=stop_status,
                                            n_unscheduled=len(pending)
                                            - idx)
        finally:
            # The owned store must not outlive the run (crash safety:
            # this also runs on Ctrl-C and injected faults); a borrowed
            # store keeps serving other runs and jobs.
            if store is not None:
                self.logger.info("run.dataplane", owned=owns_store,
                                 **store.stats())
                if owns_store:
                    store.close()

        table = ResultTable()
        for result in slots:
            if result is None:
                continue
            table.add(result)
            if profile:
                payload = {f"{phase}_seconds": round(seconds, 6)
                           for phase, seconds
                           in getattr(result, "phase_seconds", {}).items()}
                self.logger.info("run.profile", method=result.method,
                                 series=result.series, **payload)
        for index in sorted(failures):
            table.add_failure(failures[index])
        done_payload = {"n_results": len(table),
                        "status_counts": table.status_counts()}
        if cache is not None:
            done_payload["cache"] = cache.stats()
        if journal is not None and not interrupted:
            journal.run_done(**done_payload)
        self.logger.info("run.done", **done_payload)
        if interrupted:
            raise RunInterrupted(table)
        return table


def run_one_click(config, registry=None, logger=None, progress=None,
                  executor=None, cache=None, workers=None, profile=False,
                  journal=None, resume=None, policy=None, cancel=None,
                  dataplane=None):
    """The one-click evaluation entry point (demo scenario S1).

    ``workers`` is a convenience: ``workers > 1`` without an explicit
    ``executor`` selects a :class:`~repro.runtime.ProcessExecutor`.
    The resilience knobs (``journal``/``resume``/``policy``/``cancel``)
    and the zero-copy ``dataplane`` knob pass straight through to
    :meth:`BenchmarkRunner.run`.
    """
    if executor is None and workers and workers > 1:
        from ..runtime import default_executor
        executor = default_executor(workers=workers, base_seed=config.seed)
    return BenchmarkRunner(config, registry=registry, logger=logger).run(
        progress=progress, executor=executor, cache=cache, profile=profile,
        journal=journal, resume=resume, policy=policy, cancel=cancel,
        dataplane=dataplane)
